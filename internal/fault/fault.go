// Package fault is the simulator's deterministic fault-injection subsystem.
//
// A Plan describes which faults to inject — per-site rates plus explicit
// cycle-windowed events — and an Injector built from the plan answers the
// substrate's hot-path questions ("is this G-line sample perturbed this
// cycle?", "is this mesh link down?"). Decisions are a pure function of
// (seed, site, cycle, location) through a splitmix-style hash, so a faulty
// run is exactly as reproducible as a clean one: same seed and plan mean
// the same faults on the same cycles, regardless of sweep parallelism or
// call ordering. That property is what lets Report.Fingerprint pin faulty
// runs in tests.
//
// Every hook is a no-op returning its input unchanged when the relevant
// site has no rate and no events, so a wired-but-empty injector leaves a
// run bit-identical to an uninstrumented one (see the zero-fault golden
// guard test).
package fault

import (
	"fmt"
	"math"

	"repro/internal/metrics"
)

// Site identifies one class of injectable fault.
type Site uint8

// The fault sites, covering the G-line barrier network, the data NoC and
// the L1 spin-watch wakeup path.
const (
	// GLDrop loses one transmitter's assertion on a G-line for one cycle
	// (transient bit-drop): the receiver counts one fewer arrival.
	GLDrop Site = iota
	// GLSpurious adds one phantom assertion to a G-line sample.
	GLSpurious
	// SCSMAMiscount perturbs the S-CSMA count by ±K (Plan.MiscountK).
	SCSMAMiscount
	// NoCCorrupt corrupts a packet's flits on a mesh link; the link-level
	// CRC catches it and the packet is retransmitted, costing an extra
	// serialization of the packet on that link.
	NoCCorrupt
	// NoCLinkDown takes a mesh link down for the cycle (transient outage):
	// the output port cannot start a transmission.
	NoCLinkDown
	// WatchDrop loses an L1 spin-watch wakeup; the core's periodic
	// re-check recovers it after Plan.WatchRecheckCycles.
	WatchDrop
	// WatchDelay delays an L1 spin-watch wakeup by Plan.WatchDelayCycles.
	WatchDelay
	// GLStuckLow holds a G-line at 0 (samples read no assertions).
	// Event-only: stuck-at faults are windows, not rates.
	GLStuckLow
	// GLStuckHigh holds a G-line at 1 (samples read at least one
	// assertion). Event-only.
	GLStuckHigh

	// NumSites is the number of fault sites.
	NumSites
)

// siteNames maps sites to their plan-syntax keys.
var siteNames = [NumSites]string{
	GLDrop:        "gl.drop",
	GLSpurious:    "gl.spurious",
	SCSMAMiscount: "scsma.miscount",
	NoCCorrupt:    "noc.corrupt",
	NoCLinkDown:   "noc.linkdown",
	WatchDrop:     "watch.drop",
	WatchDelay:    "watch.delay",
	GLStuckLow:    "gl.stucklow",
	GLStuckHigh:   "gl.stuckhigh",
}

// String returns the site's plan-syntax key.
func (s Site) String() string {
	if s < NumSites {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// eventOnly reports whether the site only makes sense as a cycle window
// (stuck-at faults), not as a per-opportunity rate.
func (s Site) eventOnly() bool { return s == GLStuckLow || s == GLStuckHigh }

// EventOnly reports whether the site can only be scheduled as a cycle
// window (stuck-at faults), never as a per-opportunity rate. Plan
// generators (internal/chaos) use it to pick a legal temporal shape.
func (s Site) EventOnly() bool { return s.eventOnly() }

// Event is one explicitly scheduled fault: site s active over cycles
// [From, Until] at location Loc (-1 matches every location). For stuck-at
// sites the window is the stuck period; for transient sites each in-window
// opportunity fires.
type Event struct {
	Site Site
	// From and Until bound the active cycle window, inclusive.
	From, Until uint64
	// Loc restricts the event to one location (a G-line id, or a mesh
	// node*8+port code); -1 matches any location.
	Loc int64
	// K overrides Plan.MiscountK for SCSMAMiscount events (0 = default).
	K int
}

// Recovery configures the recovering barrier protocol layered over the
// G-line network when faults are enabled (see core.Recovering).
type Recovery struct {
	// Disabled turns the recovery layer off: faults are still injected but
	// the bare protocol runs unguarded (to demonstrate the deadlock the
	// guard prevents).
	Disabled bool
	// Timeout is the number of cycles an episode (first arrival to full
	// release) may stay open before the guard re-arms the controllers and
	// retries. 0 selects DefaultTimeout.
	Timeout uint64
	// MaxRetries bounds hardware retries per episode before the guard
	// escalates to the software fallback. 0 selects DefaultMaxRetries.
	MaxRetries int
	// FallbackPenalty is the per-core release latency of the software
	// fallback barrier (modeling a DSW episode). 0 selects
	// DefaultFallbackPenalty.
	FallbackPenalty uint64
	// StickyAfter is the number of consecutive fallback episodes after
	// which a context stops retrying the hardware and stays on the
	// software fallback. 0 selects DefaultStickyAfter; negative disables
	// stickiness.
	StickyAfter int
}

// Recovery defaults; chosen so a healthy barrier never trips the guard
// (episode skew in every shipped workload is far below the timeout) while
// a wedged one recovers ~25x faster than the engine's stall watchdog.
const (
	DefaultTimeout         = 200_000
	DefaultMaxRetries      = 4
	DefaultFallbackPenalty = 1_500
	DefaultStickyAfter     = 8
)

// WithDefaults returns the recovery config with zero fields replaced by
// the package defaults.
func (r Recovery) WithDefaults() Recovery {
	if r.Timeout == 0 {
		r.Timeout = DefaultTimeout
	}
	if r.MaxRetries == 0 {
		r.MaxRetries = DefaultMaxRetries
	}
	if r.FallbackPenalty == 0 {
		r.FallbackPenalty = DefaultFallbackPenalty
	}
	if r.StickyAfter == 0 {
		r.StickyAfter = DefaultStickyAfter
	}
	return r
}

// Plan is a complete, self-contained fault schedule. The zero value is a
// valid empty plan: wired into a system it injects nothing and changes no
// behavior.
type Plan struct {
	// Seed drives every rate decision; same seed, same plan, same faults.
	Seed uint64
	// Rates holds the per-opportunity fault probability of each site.
	Rates [NumSites]float64
	// Events are explicitly scheduled faults and stuck-at windows.
	Events []Event
	// MiscountK is the S-CSMA miscount magnitude (default 1).
	MiscountK int
	// WatchDelayCycles is the WatchDelay perturbation (default 64).
	WatchDelayCycles uint64
	// WatchRecheckCycles is the spin re-check period recovering a dropped
	// watch wakeup (default 2048).
	WatchRecheckCycles uint64
	// Recovery configures the recovering barrier protocol.
	Recovery Recovery
}

// Validate checks the plan for internal consistency.
func (p *Plan) Validate() error {
	for s := Site(0); s < NumSites; s++ {
		r := p.Rates[s]
		if math.IsNaN(r) || r < 0 || r > 1 {
			return fmt.Errorf("fault: rate %g for %s outside [0,1]", r, s)
		}
		if r > 0 && s.eventOnly() {
			return fmt.Errorf("fault: %s is event-only (use @from-until:%s)", s, s)
		}
	}
	for i, e := range p.Events {
		if e.Site >= NumSites {
			return fmt.Errorf("fault: event %d has invalid site %d", i, e.Site)
		}
		if e.Until < e.From {
			return fmt.Errorf("fault: event %d window [%d,%d] inverted", i, e.From, e.Until)
		}
		if e.K < 0 {
			return fmt.Errorf("fault: event %d has negative K", i)
		}
	}
	if p.MiscountK < 0 {
		return fmt.Errorf("fault: MiscountK must be >=0, got %d", p.MiscountK)
	}
	if p.Recovery.Timeout > 0 && p.Recovery.Timeout < 64 {
		return fmt.Errorf("fault: recovery timeout %d is below the hardware dance length", p.Recovery.Timeout)
	}
	return nil
}

// Empty reports whether the plan schedules no faults at all.
func (p *Plan) Empty() bool {
	for _, r := range p.Rates {
		if r > 0 {
			return false
		}
	}
	return len(p.Events) == 0
}

// Metric names registered by the injector (glvet:metricname requires every
// registration to go through a package-level const).
const (
	// MetricInjected counts every injected fault.
	MetricInjected = "fault.injected"
	// MetricInjectedPrefix is the per-site counter family; the full names
	// are MetricInjectedPrefix + Site.String().
	MetricInjectedPrefix = "fault.injected."
)

// Injector answers the substrate's fault questions for one simulated
// system. It is not safe for concurrent use; every system owns its own
// (sweeps build one injector per cell from the shared plan).
type Injector struct {
	seed      uint64
	threshold [NumSites]uint64 // rate scaled to 2^64; 0 = never
	events    [NumSites][]Event
	active    [NumSites]bool // site has a rate or events

	glActive    bool // any G-line site live (single branch on the hot path)
	nocActive   bool
	watchActive bool

	miscountK    int
	watchDelay   uint64
	watchRecheck uint64

	total   *metrics.Counter
	bySite  [NumSites]*metrics.Counter
	plan    *Plan
	nextLoc uint64
}

// NewInjector compiles a plan. A nil plan yields a nil injector (the
// canonical "faults disabled" representation).
func NewInjector(p *Plan) *Injector {
	if p == nil {
		return nil
	}
	j := &Injector{
		seed:         p.Seed,
		miscountK:    p.MiscountK,
		watchDelay:   p.WatchDelayCycles,
		watchRecheck: p.WatchRecheckCycles,
		plan:         p,
	}
	if j.miscountK == 0 {
		j.miscountK = 1
	}
	if j.watchDelay == 0 {
		j.watchDelay = 64
	}
	if j.watchRecheck == 0 {
		j.watchRecheck = 2048
	}
	for s := Site(0); s < NumSites; s++ {
		j.threshold[s] = rateToThreshold(p.Rates[s])
	}
	for _, e := range p.Events {
		j.events[e.Site] = append(j.events[e.Site], e)
	}
	for s := Site(0); s < NumSites; s++ {
		j.active[s] = j.threshold[s] != 0 || len(j.events[s]) > 0
	}
	j.glActive = j.active[GLDrop] || j.active[GLSpurious] || j.active[SCSMAMiscount] ||
		j.active[GLStuckLow] || j.active[GLStuckHigh]
	j.nocActive = j.active[NoCCorrupt] || j.active[NoCLinkDown]
	j.watchActive = j.active[WatchDrop] || j.active[WatchDelay]
	j.Bind(metrics.NewRegistry())
	return j
}

// Plan returns the plan the injector was compiled from.
func (j *Injector) Plan() *Plan { return j.plan }

// Bind re-homes the injector's fault counters into reg (the system-level
// registry), so injected-fault counts appear in the run report. Counts
// recorded before Bind are discarded.
func (j *Injector) Bind(reg *metrics.Registry) {
	j.total = reg.Counter(MetricInjected)
	for s := Site(0); s < NumSites; s++ {
		j.bySite[s] = reg.Counter(MetricInjectedPrefix + s.String())
	}
}

// rateToThreshold scales a probability to a uint64 comparison threshold.
func rateToThreshold(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return ^uint64(0)
	}
	return uint64(rate * float64(1<<63) * 2)
}

// mix is a splitmix64-style avalanche hash: the stateless random oracle
// behind every rate decision.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hit decides whether site s fires at (cycle, loc): an in-window event
// always fires; otherwise the rate threshold is compared against the
// hashed coordinates.
func (j *Injector) hit(s Site, cycle, loc uint64) bool {
	for _, e := range j.events[s] {
		if cycle >= e.From && cycle <= e.Until && (e.Loc < 0 || uint64(e.Loc) == loc) {
			return true
		}
	}
	t := j.threshold[s]
	return t != 0 && mix(j.seed^(uint64(s)+1)*0x9e3779b97f4a7c15^mix(cycle)^mix(loc^0xd1b54a32d192ed03)) < t
}

// eventK returns the miscount magnitude for (cycle, loc), honoring a
// matching event's K override.
func (j *Injector) eventK(cycle, loc uint64) int {
	for _, e := range j.events[SCSMAMiscount] {
		if e.K > 0 && cycle >= e.From && cycle <= e.Until && (e.Loc < 0 || uint64(e.Loc) == loc) {
			return e.K
		}
	}
	return j.miscountK
}

// record counts one injected fault.
func (j *Injector) record(s Site) {
	j.total.Inc()
	j.bySite[s].Inc()
}

// GLActive reports whether any G-line fault site is live; lines skip the
// sampling hook entirely otherwise.
func (j *Injector) GLActive() bool { return j != nil && j.glActive }

// SampleLine perturbs the S-CSMA sample of G-line `line` for this cycle:
// n transmitters actually asserted, and the returned count is what the
// receiver observes. Applies stuck-at windows, transient drops, spurious
// assertions and S-CSMA miscounts, in that order.
func (j *Injector) SampleLine(line, cycle uint64, n int) int {
	if !j.glActive {
		return n
	}
	if j.active[GLStuckLow] && j.hit(GLStuckLow, cycle, line) {
		if n != 0 {
			j.record(GLStuckLow)
		}
		return 0
	}
	if j.active[GLStuckHigh] && j.hit(GLStuckHigh, cycle, line) {
		if n == 0 {
			j.record(GLStuckHigh)
		}
		if n < 1 {
			n = 1
		}
		return n
	}
	if n > 0 && j.active[GLDrop] && j.hit(GLDrop, cycle, line) {
		j.record(GLDrop)
		n--
	}
	if j.active[GLSpurious] && j.hit(GLSpurious, cycle, line) {
		j.record(GLSpurious)
		n++
	}
	if n > 0 && j.active[SCSMAMiscount] && j.hit(SCSMAMiscount, cycle, line) {
		j.record(SCSMAMiscount)
		k := j.eventK(cycle, line)
		// The hash's next bit picks the direction; undercounts clamp at 0.
		if mix(j.seed^cycle^line^0xa0761d6478bd642f)&1 == 0 {
			n += k
		} else if n -= k; n < 0 {
			n = 0
		}
	}
	return n
}

// nocLoc packs a mesh (node, port) into one location code.
func nocLoc(node, port int) uint64 { return uint64(node)<<3 | uint64(port) }

// LinkDown reports whether the mesh output port (node, port) is down this
// cycle; a down link cannot start a transmission.
func (j *Injector) LinkDown(cycle uint64, node, port int) bool {
	if j == nil || !j.active[NoCLinkDown] {
		return false
	}
	if j.hit(NoCLinkDown, cycle, nocLoc(node, port)) {
		j.record(NoCLinkDown)
		return true
	}
	return false
}

// Corrupt reports whether the packet starting transmission on (node, port)
// this cycle is corrupted in flight; the caller models one link-level
// retransmission.
func (j *Injector) Corrupt(cycle uint64, node, port int) bool {
	if j == nil || !j.active[NoCCorrupt] {
		return false
	}
	if j.hit(NoCCorrupt, cycle, nocLoc(node, port)) {
		j.record(NoCCorrupt)
		return true
	}
	return false
}

// WatchPerturb returns the extra delay applied to an L1 spin-watch wakeup
// on `tile` fired at `cycle`: 0 when the wakeup is clean, the re-check
// period when it is dropped, or the delay window when it is delayed.
func (j *Injector) WatchPerturb(cycle uint64, tile int) uint64 {
	if j == nil || !j.watchActive {
		return 0
	}
	loc := uint64(tile)
	if j.active[WatchDrop] && j.hit(WatchDrop, cycle, loc) {
		j.record(WatchDrop)
		return j.watchRecheck
	}
	if j.active[WatchDelay] && j.hit(WatchDelay, cycle, loc) {
		j.record(WatchDelay)
		return j.watchDelay
	}
	return 0
}
