package cache

import "testing"

// FuzzCacheOperations drives arbitrary operation sequences against a small
// cache and checks structural invariants: residency never exceeds capacity,
// a just-inserted line is resident, and eviction reports a line that was
// resident. Run with `go test -fuzz FuzzCacheOperations ./internal/cache`.
func FuzzCacheOperations(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := New(4*2*64, 2, 64) // 4 sets x 2 ways
		capacity := c.Sets() * c.Ways()
		resident := map[uint64]bool{}
		for i := 0; i+1 < len(data); i += 2 {
			addr := uint64(data[i]) * 64
			switch data[i+1] % 3 {
			case 0:
				st := c.Lookup(addr)
				if (st != StateInvalid) != resident[addr] {
					t.Fatalf("lookup(%#x)=%v but model resident=%v", addr, st, resident[addr])
				}
			case 1:
				victim, _, evicted := c.Insert(addr, StateShared)
				if evicted {
					if !resident[victim] {
						t.Fatalf("evicted non-resident line %#x", victim)
					}
					delete(resident, victim)
				}
				resident[addr] = true
			case 2:
				if resident[addr] {
					c.SetState(addr, StateInvalid)
					delete(resident, addr)
				}
			}
			if got := c.ResidentLines(); got > capacity || got != len(resident) {
				t.Fatalf("resident=%d model=%d capacity=%d", got, len(resident), capacity)
			}
		}
	})
}
