// Package cache implements the set-associative cache arrays used for the
// private L1 caches and the shared L2 banks: physically-indexed sets with
// true-LRU replacement and per-line coherence state.
package cache

import "fmt"

// State is the coherence state of a cached line (MESI).
type State byte

// MESI states. StateInvalid lines are not resident.
const (
	StateInvalid State = iota
	StateShared
	StateExclusive
	StateModified
)

// String returns the one-letter MESI name.
func (s State) String() string {
	switch s {
	case StateInvalid:
		return "I"
	case StateShared:
		return "S"
	case StateExclusive:
		return "E"
	case StateModified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", byte(s))
}

// Writable reports whether a line in this state may be written without an
// ownership request.
func (s State) Writable() bool { return s == StateExclusive || s == StateModified }

type line struct {
	tag   uint64
	state State
	lru   uint64 // higher = more recently used
}

// Cache is a set-associative array indexed by line address. Addresses are
// byte addresses; the cache extracts set index and tag itself.
type Cache struct {
	lineShift uint
	setBits   uint
	setMask   uint64
	ways      int
	sets      [][]line
	tick      uint64

	hits, misses uint64
}

// New builds a cache of the given total size in bytes.
func New(size, ways, lineSize int) *Cache {
	if size <= 0 || ways <= 0 || lineSize <= 0 {
		panic(fmt.Sprintf("cache: invalid geometry size=%d ways=%d line=%d", size, ways, lineSize))
	}
	if lineSize&(lineSize-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d not a power of two", lineSize))
	}
	numSets := size / (ways * lineSize)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a positive power of two", numSets))
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	setBits := uint(0)
	for 1<<setBits != numSets {
		setBits++
	}
	c := &Cache{
		lineShift: shift,
		setBits:   setBits,
		setMask:   uint64(numSets - 1),
		ways:      ways,
		sets:      make([][]line, numSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, ways)
	}
	return c
}

// Sets returns the number of sets; Ways the associativity.
func (c *Cache) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Hits and Misses return the lookup counters.
func (c *Cache) Hits() uint64   { return c.hits }
func (c *Cache) Misses() uint64 { return c.misses }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	lineAddr := addr >> c.lineShift
	return int(lineAddr & c.setMask), lineAddr >> c.setBits
}

// Lookup probes the cache. On a hit it refreshes LRU and returns the current
// state; on a miss it returns StateInvalid. Lookup counts hit/miss stats.
func (c *Cache) Lookup(addr uint64) State {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.state != StateInvalid && l.tag == tag {
			c.tick++
			l.lru = c.tick
			c.hits++
			return l.state
		}
	}
	c.misses++
	return StateInvalid
}

// Peek returns the state of addr without touching LRU or counters.
func (c *Cache) Peek(addr uint64) State {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.state != StateInvalid && l.tag == tag {
			return l.state
		}
	}
	return StateInvalid
}

// SetState updates the state of a resident line; it panics if the line is
// absent (protocol bug) unless the new state is StateInvalid.
func (c *Cache) SetState(addr uint64, s State) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.state != StateInvalid && l.tag == tag {
			l.state = s
			if s == StateInvalid {
				l.lru = 0
			}
			return
		}
	}
	if s != StateInvalid {
		panic(fmt.Sprintf("cache: SetState(%#x,%v) on absent line", addr, s))
	}
}

// Victim returns the line address that Insert would evict for addr, and
// whether an eviction is needed (set full and addr absent). It does not
// modify the cache.
func (c *Cache) Victim(addr uint64) (victimAddr uint64, evict bool) {
	set, tag := c.index(addr)
	var lru *line
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.state == StateInvalid {
			return 0, false
		}
		if l.tag == tag {
			return 0, false
		}
		if lru == nil || l.lru < lru.lru {
			lru = l
		}
	}
	return c.lineAddr(set, lru.tag), true
}

func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	return ((tag << c.setBits) | uint64(set)) << c.lineShift
}

// Insert places addr with the given state, evicting the LRU line of the set
// if needed. It returns the evicted line's address and state when an
// eviction occurred. Inserting an already-resident line just updates state.
func (c *Cache) Insert(addr uint64, s State) (victimAddr uint64, victimState State, evicted bool) {
	if s == StateInvalid {
		panic("cache: inserting invalid line")
	}
	set, tag := c.index(addr)
	c.tick++
	var lru *line
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.state != StateInvalid && l.tag == tag {
			l.state = s
			l.lru = c.tick
			return 0, StateInvalid, false
		}
		if l.state == StateInvalid {
			if lru == nil || lru.state != StateInvalid {
				lru = l
			}
			continue
		}
		if lru == nil || (lru.state != StateInvalid && l.lru < lru.lru) {
			lru = l
		}
	}
	if lru.state != StateInvalid {
		victimAddr = c.lineAddr(set, lru.tag)
		victimState = lru.state
		evicted = true
	}
	lru.tag = tag
	lru.state = s
	lru.lru = c.tick
	return victimAddr, victimState, evicted
}

// ResidentLines returns the number of valid lines, for tests.
func (c *Cache) ResidentLines() int {
	n := 0
	for _, set := range c.sets {
		for _, l := range set {
			if l.state != StateInvalid {
				n++
			}
		}
	}
	return n
}

// ForEach calls fn for every resident line (address and state), in set
// order. Used by invariant checkers and debug dumps.
func (c *Cache) ForEach(fn func(lineAddr uint64, st State)) {
	for set := range c.sets {
		for _, l := range c.sets[set] {
			if l.state != StateInvalid {
				fn(c.lineAddr(set, l.tag), l.state)
			}
		}
	}
}
