package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	c := New(32*1024, 4, 64) // the Table 1 L1
	if c.Sets() != 128 || c.Ways() != 4 {
		t.Errorf("geometry %d sets x %d ways, want 128x4", c.Sets(), c.Ways())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []struct{ size, ways, line int }{
		{0, 4, 64}, {1024, 0, 64}, {1024, 4, 48}, {96 * 64, 4, 64} /* 24 sets */, {64, 4, 64},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d,%d) did not panic", tc.size, tc.ways, tc.line)
				}
			}()
			New(tc.size, tc.ways, tc.line)
		}()
	}
}

func TestHitMissAndStates(t *testing.T) {
	c := New(1024, 2, 64) // 8 sets, 2 ways
	if st := c.Lookup(0x40); st != StateInvalid {
		t.Fatalf("cold lookup state %v", st)
	}
	c.Insert(0x40, StateShared)
	if st := c.Lookup(0x40); st != StateShared {
		t.Fatalf("state %v, want S", st)
	}
	if st := c.Lookup(0x7f); st != StateShared { // same line, different offset
		t.Fatalf("same-line offset missed: %v", st)
	}
	c.SetState(0x40, StateModified)
	if st := c.Peek(0x40); st != StateModified {
		t.Fatalf("SetState not applied: %v", st)
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", c.Hits(), c.Misses())
	}
}

func TestSetStateOnAbsentLine(t *testing.T) {
	c := New(1024, 2, 64)
	c.SetState(0x40, StateInvalid) // no-op allowed
	defer func() {
		if recover() == nil {
			t.Error("SetState to valid on absent line did not panic")
		}
	}()
	c.SetState(0x40, StateShared)
}

func TestLRUEviction(t *testing.T) {
	c := New(2*64, 2, 64) // 1 set, 2 ways: lines at multiples of 64
	c.Insert(0*64, StateShared)
	c.Insert(1*64, StateShared)
	c.Lookup(0 * 64) // refresh line 0: line 64 is now LRU
	victim, vstate, evicted := c.Insert(2*64, StateModified)
	if !evicted || victim != 64 || vstate != StateShared {
		t.Errorf("evicted=%v victim=%#x state=%v; want line 0x40 S", evicted, victim, vstate)
	}
	if c.Peek(0) == StateInvalid || c.Peek(2*64) == StateInvalid {
		t.Error("wrong resident lines after eviction")
	}
}

func TestVictimPreview(t *testing.T) {
	c := New(2*64, 2, 64)
	if _, evict := c.Victim(0); evict {
		t.Error("empty set should not need eviction")
	}
	c.Insert(0, StateShared)
	c.Insert(64, StateModified)
	if _, evict := c.Victim(0); evict {
		t.Error("already-resident line should not evict")
	}
	victim, evict := c.Victim(128)
	if !evict || victim != 0 {
		t.Errorf("victim %#x evict=%v, want 0x0 true", victim, evict)
	}
	// Victim must not modify the cache.
	if c.Peek(0) != StateShared || c.ResidentLines() != 2 {
		t.Error("Victim mutated the cache")
	}
}

func TestInvalidPreferredOverEviction(t *testing.T) {
	c := New(2*64, 2, 64)
	c.Insert(0, StateShared)
	c.Insert(64, StateShared)
	c.SetState(0, StateInvalid)
	_, _, evicted := c.Insert(128, StateShared)
	if evicted {
		t.Error("insert evicted despite an invalid way")
	}
}

// Property: the cache agrees with a reference model (LRU per set, same
// geometry) over random access sequences.
func TestPropMatchesReferenceLRU(t *testing.T) {
	type ref struct {
		order []uint64 // line addrs, most recent last
	}
	f := func(seed int64) bool {
		const ways = 4
		const sets = 8
		const line = 64
		c := New(sets*ways*line, ways, line)
		r := rand.New(rand.NewSource(seed))
		model := make([]ref, sets)
		for op := 0; op < 500; op++ {
			addr := uint64(r.Intn(64)) * line // 64 distinct lines over 8 sets
			set := int(addr/line) % sets
			m := &model[set]
			// Reference result.
			found := -1
			for i, a := range m.order {
				if a == addr {
					found = i
					break
				}
			}
			got := c.Lookup(addr)
			if (found >= 0) != (got != StateInvalid) {
				return false
			}
			if found >= 0 {
				m.order = append(append(m.order[:found:found], m.order[found+1:]...), addr)
				continue
			}
			c.Insert(addr, StateShared)
			if len(m.order) == ways {
				m.order = m.order[1:]
			}
			m.order = append(m.order, addr)
		}
		// Final residency must match exactly.
		for set := range model {
			for _, a := range model[set].order {
				if c.Peek(a) == StateInvalid {
					return false
				}
			}
		}
		total := 0
		for _, m := range model {
			total += len(m.order)
		}
		return c.ResidentLines() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStateStringAndWritable(t *testing.T) {
	if StateModified.String() != "M" || StateShared.String() != "S" ||
		StateExclusive.String() != "E" || StateInvalid.String() != "I" {
		t.Error("state names wrong")
	}
	if StateShared.Writable() || StateInvalid.Writable() {
		t.Error("S/I must not be writable")
	}
	if !StateModified.Writable() || !StateExclusive.Writable() {
		t.Error("M/E must be writable")
	}
}
