package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/stats"
)

type cohHarness struct {
	t    *testing.T
	eng  *engine.Engine
	prot *Protocol
}

func newCohHarness(t *testing.T, cores int) *cohHarness {
	t.Helper()
	eng := engine.New()
	cfg := config.Default(cores)
	return &cohHarness{t: t, eng: eng, prot: New(eng, cfg, mem.NewStore())}
}

// access issues one operation and runs the engine until it completes,
// returning the value and the completion cycle.
func (h *cohHarness) access(tile int, kind AccessKind, addr, operand, value uint64, hasValue bool) (uint64, uint64) {
	h.t.Helper()
	done := false
	var got, at uint64
	h.prot.L1(tile).Access(kind, addr, operand, value, hasValue, func(v uint64) {
		done = true
		got = v
		at = h.eng.Now()
	})
	for i := 0; i < 100_000 && !done; i++ {
		h.eng.Step()
	}
	if !done {
		h.t.Fatalf("access %v by tile %d to %#x did not complete", kind, tile, addr)
	}
	return got, at
}

// settle runs the engine until the mesh is empty (acks, unblocks drain).
func (h *cohHarness) settle() {
	for i := 0; i < 100_000 && h.prot.Mesh().InFlight() > 0; i++ {
		h.eng.Step()
	}
	for i := 0; i < 8; i++ {
		h.eng.Step()
	}
}

// addrFor returns a line-aligned address homed at the given tile.
func (h *cohHarness) addrFor(home int) uint64 {
	ls := uint64(h.prot.cfg.LineSize)
	base := uint64(0x100000)
	for a := base; ; a += ls {
		if h.prot.HomeOf(a) == home {
			return a
		}
	}
}

func TestReadMissGrantsExclusive(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(1)
	h.access(0, Read, addr, 0, 0, false)
	h.settle()
	if st := h.prot.L1(0).HasLine(addr); st != cache.StateExclusive {
		t.Errorf("first reader state %v, want E", st)
	}
	state, owner, _ := h.prot.Bank(1).DirState(addr)
	if state != "O" || owner != 0 {
		t.Errorf("dir %s owner %d, want O/0", state, owner)
	}
}

func TestSecondReaderDowngradesToShared(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(1)
	h.access(0, Read, addr, 0, 0, false)
	h.settle()
	h.access(2, Read, addr, 0, 0, false)
	h.settle()
	if st := h.prot.L1(0).HasLine(addr); st != cache.StateShared {
		t.Errorf("old owner state %v, want S", st)
	}
	if st := h.prot.L1(2).HasLine(addr); st != cache.StateShared {
		t.Errorf("new reader state %v, want S", st)
	}
	state, _, sharers := h.prot.Bank(1).DirState(addr)
	if state != "S" || sharers != 0b101 {
		t.Errorf("dir %s sharers %b, want S/101", state, sharers)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(3)
	h.access(0, Read, addr, 0, 0, false)
	h.settle()
	h.access(1, Read, addr, 0, 0, false)
	h.settle()
	h.access(2, Write, addr, 0, 7, true)
	h.settle()
	if st := h.prot.L1(0).HasLine(addr); st != cache.StateInvalid {
		t.Errorf("sharer 0 state %v, want I", st)
	}
	if st := h.prot.L1(1).HasLine(addr); st != cache.StateInvalid {
		t.Errorf("sharer 1 state %v, want I", st)
	}
	if st := h.prot.L1(2).HasLine(addr); st != cache.StateModified {
		t.Errorf("writer state %v, want M", st)
	}
	if v := h.prot.Memory().Load(addr); v != 7 {
		t.Errorf("functional value %d, want 7", v)
	}
}

func TestReadAfterRemoteWriteSeesValue(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(2)
	h.access(0, Write, addr, 0, 99, true)
	h.settle()
	v, _ := h.access(1, Read, addr, 0, 0, false)
	if v != 99 {
		t.Errorf("remote read %d, want 99", v)
	}
	h.settle()
	// The dirty owner was forwarded: both end Shared.
	if st := h.prot.L1(0).HasLine(addr); st != cache.StateShared {
		t.Errorf("old writer state %v, want S", st)
	}
}

func TestWriteUpgradeFromShared(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(1)
	h.access(0, Read, addr, 0, 0, false)
	h.settle()
	h.access(2, Read, addr, 0, 0, false)
	h.settle()
	// Tile 2 already shares the line: its write is an upgrade (1-flit
	// permission grant, no data).
	before := h.prot.Traffic().Flits[stats.ClassReply]
	h.access(2, Write, addr, 0, 1, true)
	h.settle()
	delta := h.prot.Traffic().Flits[stats.ClassReply] - before
	if delta != 1 {
		t.Errorf("upgrade reply used %d flits, want 1 (permission only)", delta)
	}
	if st := h.prot.L1(2).HasLine(addr); st != cache.StateModified {
		t.Errorf("upgrader state %v, want M", st)
	}
}

func TestWriteHitInExclusiveIsSilent(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(1)
	h.access(0, Read, addr, 0, 0, false)
	h.settle()
	msgs := h.prot.Traffic().TotalMessages()
	h.access(0, Write, addr, 0, 5, true)
	h.settle()
	if got := h.prot.Traffic().TotalMessages(); got != msgs {
		t.Errorf("E->M silent upgrade generated %d messages", got-msgs)
	}
	if st := h.prot.L1(0).HasLine(addr); st != cache.StateModified {
		t.Errorf("state %v, want M", st)
	}
}

func TestAtomicFetchAdd(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(2)
	v0, _ := h.access(0, AtomicAdd, addr, 5, 0, false)
	v1, _ := h.access(1, AtomicAdd, addr, 3, 0, false)
	if v0 != 0 || v1 != 5 {
		t.Errorf("fetch&add returned %d,%d, want 0,5", v0, v1)
	}
	if v := h.prot.Memory().Load(addr); v != 8 {
		t.Errorf("final value %d, want 8", v)
	}
}

func TestAtomicInvalidatesCachedCopies(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(2)
	h.access(0, Read, addr, 0, 0, false)
	h.access(1, Read, addr, 0, 0, false)
	h.settle()
	h.access(3, AtomicTAS, addr, 1, 0, false)
	h.settle()
	for tile := 0; tile < 2; tile++ {
		if st := h.prot.L1(tile).HasLine(addr); st != cache.StateInvalid {
			t.Errorf("tile %d state %v after atomic, want I", tile, st)
		}
	}
	state, _, _ := h.prot.Bank(2).DirState(addr)
	if state != "I" {
		t.Errorf("dir state %s after atomic, want I (uncached)", state)
	}
}

func TestLLSCBasic(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(1)
	v, _ := h.access(0, LoadLinked, addr, 0, 0, false)
	if v != 0 {
		t.Errorf("LL value %d, want 0", v)
	}
	if st := h.prot.L1(0).HasLine(addr); !st.Writable() {
		t.Errorf("post-LL state %v, want writable", st)
	}
	if !h.prot.L1(0).StoreConditional(addr, 42) {
		t.Fatal("SC failed with owned line")
	}
	if got := h.prot.Memory().Load(addr); got != 42 {
		t.Errorf("SC stored %d, want 42", got)
	}
}

func TestLLSCFailsAfterInvalidation(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(1)
	h.access(0, LoadLinked, addr, 0, 0, false)
	h.settle()
	h.access(2, LoadLinked, addr, 0, 0, false) // steals the line
	h.settle()
	if h.prot.L1(0).StoreConditional(addr, 1) {
		t.Error("SC succeeded after losing the line")
	}
	if !h.prot.L1(2).StoreConditional(addr, 2) {
		t.Error("new owner's SC failed")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	h := newCohHarness(t, 4)
	cfg := h.prot.cfg
	// Fill one L1 set with writes, forcing a dirty eviction.
	setSpan := uint64(cfg.L1Size / cfg.L1Ways) // addresses mapping to the same set
	base := h.addrFor(1)
	for i := 0; i <= cfg.L1Ways; i++ {
		h.access(0, Write, base+uint64(i)*setSpan, 0, uint64(i), true)
		h.settle()
	}
	if st := h.prot.L1(0).HasLine(base); st != cache.StateInvalid {
		t.Fatalf("LRU line not evicted (state %v)", st)
	}
	// After the PutM the directory no longer lists tile 0 as owner, so a
	// re-read must not forward to it.
	state, owner, _ := h.prot.Bank(h.prot.HomeOf(base)).DirState(base)
	if state == "O" && owner == 0 {
		t.Errorf("directory still shows evicted owner: %s/%d", state, owner)
	}
}

func TestBlockingDirectoryQueuesConcurrentRequests(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(3)
	// Issue two writes from different tiles in the same cycle; both must
	// complete (the second queues at the home).
	done := 0
	h.prot.L1(0).Access(Write, addr, 0, 1, true, func(uint64) { done++ })
	h.prot.L1(1).Access(Write, addr, 0, 2, true, func(uint64) { done++ })
	for i := 0; i < 100_000 && done < 2; i++ {
		h.eng.Step()
	}
	if done != 2 {
		t.Fatalf("only %d of 2 concurrent writes completed", done)
	}
	h.settle()
	// Exactly one tile owns the line.
	owners := 0
	for tile := 0; tile < 2; tile++ {
		if h.prot.L1(tile).HasLine(addr) == cache.StateModified {
			owners++
		}
	}
	if owners != 1 {
		t.Errorf("%d tiles own the line in M, want 1", owners)
	}
}

func TestL1HitLatencyIsOneCycle(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(1)
	h.access(0, Read, addr, 0, 0, false)
	h.settle()
	start := h.eng.Now()
	_, end := h.access(0, Read, addr, 0, 0, false)
	if end-start != 1 {
		t.Errorf("L1 hit took %d cycles, want 1", end-start)
	}
}

func TestLocalHomeAccessAvoidsNoC(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(0) // homed at tile 0
	h.access(0, Read, addr, 0, 0, false)
	h.settle()
	if msgs := h.prot.Traffic().TotalMessages(); msgs != 0 {
		t.Errorf("local-home access generated %d NoC messages", msgs)
	}
}

func TestTrafficClassesOnRemoteMiss(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(2)
	h.access(0, Read, addr, 0, 0, false)
	h.settle()
	tr := h.prot.Traffic()
	if tr.Messages[stats.ClassRequest] != 1 {
		t.Errorf("requests %d, want 1 (GetS)", tr.Messages[stats.ClassRequest])
	}
	if tr.Messages[stats.ClassReply] != 1 {
		t.Errorf("replies %d, want 1 (Data)", tr.Messages[stats.ClassReply])
	}
	if tr.Messages[stats.ClassCoherence] != 1 {
		t.Errorf("coherence %d, want 1 (Unblock)", tr.Messages[stats.ClassCoherence])
	}
	if tr.Flits[stats.ClassReply] != uint64(h.prot.cfg.DataFlits()) {
		t.Errorf("reply flits %d, want %d", tr.Flits[stats.ClassReply], h.prot.cfg.DataFlits())
	}
}

func TestMemoryFetchCharged(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(1)
	_, end := h.access(0, Read, addr, 0, 0, false)
	if end < h.prot.cfg.MemLatency {
		t.Errorf("cold miss took %d cycles, below the %d-cycle memory latency", end, h.prot.cfg.MemLatency)
	}
	fetches, _ := h.prot.MemAccesses()
	if fetches != 1 {
		t.Errorf("mem fetches %d, want 1", fetches)
	}
	// Second access from elsewhere hits in L2: far faster.
	start := h.eng.Now()
	_, end2 := h.access(3, Read, addr, 0, 0, false)
	if end2-start >= h.prot.cfg.MemLatency {
		t.Errorf("L2 hit took %d cycles", end2-start)
	}
}

func TestWatchFiresOnInvalidation(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(1)
	h.access(0, Read, addr, 0, 0, false)
	h.settle()
	fired := false
	h.prot.L1(0).Watch(addr, func() { fired = true })
	h.access(2, Write, addr, 0, 1, true)
	h.settle()
	if !fired {
		t.Error("watch did not fire on invalidation")
	}
}

func TestDoubleWatchPanics(t *testing.T) {
	h := newCohHarness(t, 4)
	h.prot.L1(0).Watch(0x40, func() {})
	defer func() {
		if recover() == nil {
			t.Error("double watch did not panic")
		}
	}()
	h.prot.L1(0).Watch(0x80, func() {})
}
