package coherence

import (
	"fmt"

	"repro/internal/cache"
)

// dirState is the directory's view of a line.
type dirState byte

const (
	// dirInvalid: no L1 holds the line.
	dirInvalid dirState = iota
	// dirShared: one or more L1s hold read-only copies (sharers bitset).
	dirShared
	// dirOwned: exactly one L1 holds the line in E or M.
	dirOwned
)

// contKind names the resumption point of a line's in-flight transaction.
// The directory used to chain closures for these; the enum plus the request
// parameters stored on dirEntry carry the same state without allocating.
type contKind byte

const (
	contNone contKind = iota
	// contGrantE: data at bank; grant the line Exclusive to the requester
	// (read miss on an idle line, or the owner re-reading a dropped line).
	contGrantE
	// contGrantS: data at bank; add the requester as a sharer, grant S.
	contGrantS
	// contFwdShared: the owner acked a Fwd; downgrade the directory to
	// Shared and continue once the data is at the bank.
	contFwdShared
	// contGrantSData: data at bank after a Fwd; grant S to the requester.
	contGrantSData
	// contGrantM: grant Modified ownership to the requester (grantFlits
	// distinguishes a full line from an upgrade's permission-only reply).
	contGrantM
	// contInvDone: every sharer acked its Inv; grant M (directly for an
	// upgrade, after a data read otherwise).
	contInvDone
	// contXfer: the owner acked a 3-hop Inv; either the transfer happened
	// or the home must supply the line itself.
	contXfer
	// contAckDataM: the owner acked a 2-hop Inv; wait for the line data,
	// then grant M.
	contAckDataM
	// contAtomicInv: every cached copy is invalidated; fetch the line,
	// then run the RMW.
	contAtomicInv
	// contAtomicRMW: data at bank; execute the RMW and ack the requester.
	contAtomicRMW
)

type dirEntry struct {
	state   dirState
	owner   int
	sharers uint64 // bitset over tiles
	busy    bool

	// waitq queues requests that arrived while the line was busy; waitHead
	// indexes the next one so draining reuses the backing array instead of
	// reslicing it away.
	waitq    []*msg
	waitHead int

	// In-flight transaction bookkeeping: the continuation kind plus the
	// request parameters it resumes with.
	acksLeft     int
	ackHadData   bool
	ackXferred   bool
	cont         contKind
	awaitUnblock bool

	reqFrom    int
	reqKind    AccessKind
	reqOperand uint64
	grantFlits int
	upgrade    bool
}

// Bank is a tile's slice of the shared distributed L2, including the
// directory for the lines whose home it is. The bank serializes request
// starts (one tag access per L2TagLatency), which is the hot-spot queueing
// that contended software barriers suffer from.
type Bank struct {
	p    *Protocol
	tile int
	l2   *cache.Cache
	dir  map[uint64]*dirEntry
	src  string // precomputed trace source label ("bank.7")

	busyUntil uint64
}

func newBank(p *Protocol, tile int) *Bank {
	return &Bank{
		p:    p,
		tile: tile,
		l2:   cache.New(p.cfg.L2SizePerCore, p.cfg.L2Ways, p.cfg.LineSize),
		dir:  make(map[uint64]*dirEntry),
		src:  fmt.Sprintf("bank.%d", tile),
	}
}

func bit(tile int) uint64 { return 1 << uint(tile) }

// setDir moves the directory entry to state s, counting the transition in
// the coh.dir.transitions metric when the state actually changes.
func (b *Bank) setDir(e *dirEntry, s dirState) {
	if e.state != s {
		b.p.cDirTrans.Inc()
	}
	e.state = s
}

//glvet:cyclepath
func (b *Bank) entry(addr uint64) *dirEntry {
	e := b.dir[addr]
	if e == nil {
		//lint:allow allocfree directory entries are allocated once per line
		e = &dirEntry{}
		b.dir[addr] = e
	}
	return e
}

// receive handles a protocol message addressed to this home bank. Acks,
// writebacks and unblocks are consumed synchronously and recycled here;
// requests stay alive until process (or the wait queue) consumes them.
//
//glvet:cyclepath
func (b *Bank) receive(m *msg) {
	switch m.t {
	case msgGetS, msgGetX, msgAtomic:
		e := b.entry(m.addr)
		if e.busy {
			//lint:allow allocfree waitq growth is amortized; finish() compacts and reuses the array
			e.waitq = append(e.waitq, m)
			b.p.cReqQueued.Inc()
			return
		}
		e.busy = true
		b.schedule(m)
	case msgInvAck, msgFwdAck:
		b.ack(m)
		b.p.freeMsg(m)
	case msgPutM:
		b.putM(m)
		b.p.freeMsg(m)
	case msgUnblock:
		b.unblock(m)
		b.p.freeMsg(m)
	default:
		panic(fmt.Sprintf("coherence: bank %d received %v", b.tile, m.t))
	}
}

// bankProcessCB starts a scheduled request at its tag-access slot: recv is
// the bank, obj the request message.
func bankProcessCB(recv, obj any, _, _ uint64) { recv.(*Bank).process(obj.(*msg)) }

// bankContCB resumes a line's transaction: recv is the bank, obj the
// directory entry, a the line address, b the continuation kind.
func bankContCB(recv, obj any, a, b uint64) {
	recv.(*Bank).runCont(a, obj.(*dirEntry), contKind(b))
}

// bankFetchCB completes an off-chip fetch: install the line in L2, then
// charge the data-array read before resuming the transaction.
func bankFetchCB(recv, obj any, a, b uint64) {
	bk := recv.(*Bank)
	bk.insertL2(a, cache.StateShared)
	bk.p.eng.CallAfter(bk.p.cfg.L2DataLatency, bankContCB, bk, obj, a, b)
}

// schedule charges the bank's tag-access occupancy and then processes m.
//
//glvet:cyclepath
func (b *Bank) schedule(m *msg) {
	now := b.p.eng.Now()
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	b.busyUntil = start + b.p.cfg.L2TagLatency
	b.p.eng.Call(b.busyUntil, bankProcessCB, b, m, 0, 0)
}

//glvet:cyclepath
func (b *Bank) process(m *msg) {
	e := b.entry(m.addr)
	if b.p.traceOn {
		//lint:allow allocfree trace emission is opt-in debugging
		b.p.tracer.Emit(b.p.eng.Now(), b.src, "%v %#x from %d (dir=%v sharers=%b)", m.t, m.addr, m.from, e.state, e.sharers)
	}
	t, addr, from := m.t, m.addr, m.from
	kind, operand := m.kind, m.operand
	b.p.freeMsg(m)
	switch t {
	case msgGetS:
		b.getS(e, addr, from)
	case msgGetX:
		b.getX(e, addr, from)
	case msgAtomic:
		e.reqKind, e.reqOperand = kind, operand
		b.atomic(e, addr, from)
	default:
		panic(fmt.Sprintf("coherence: bank %d processing %v", b.tile, t))
	}
}

//glvet:cyclepath
func (b *Bank) getS(e *dirEntry, addr uint64, from int) {
	e.reqFrom = from
	switch e.state {
	case dirInvalid:
		b.withData(addr, e, contGrantE)
	case dirShared:
		b.withData(addr, e, contGrantS)
	case dirOwned:
		if e.owner == from {
			// The owner silently dropped a clean line and re-reads it.
			// (contGrantE rewrites owner/sharers to their current values.)
			b.withData(addr, e, contGrantE)
			return
		}
		b.expectAcks(e, 1, contFwdShared)
		b.p.cFwdSent.Inc()
		b.p.send(b.tile, e.owner, b.p.newMsg(msgFwd, addr, b.tile), controlFlits)
	}
}

//glvet:cyclepath
func (b *Bank) getX(e *dirEntry, addr uint64, from int) {
	e.reqFrom = from
	switch e.state {
	case dirInvalid:
		e.grantFlits = b.p.dataFlits()
		b.withData(addr, e, contGrantM)
	case dirShared:
		wasSharer := e.sharers&bit(from) != 0
		others := e.sharers &^ bit(from)
		e.grantFlits = b.p.dataFlits()
		if wasSharer {
			e.grantFlits = controlFlits // upgrade: permission only
		}
		if others == 0 {
			if wasSharer {
				// Upgrade with no other sharers: permission-only reply,
				// no data read needed.
				b.contAt(b.p.cfg.L2DataLatency, e, addr, contGrantM)
			} else {
				b.withData(addr, e, contGrantM)
			}
			return
		}
		e.upgrade = wasSharer
		n := b.invalidateAll(addr, others)
		b.expectAcks(e, n, contInvDone)
	case dirOwned:
		if e.owner == from {
			// Owner silently dropped the clean line, now writes it.
			e.grantFlits = b.p.dataFlits()
			b.withData(addr, e, contGrantM)
			return
		}
		if b.p.cfg.ThreeHopOwnership {
			// Ask the owner to hand the line straight to the requester;
			// fall back to the home-relay path if the owner no longer
			// has it (silent clean drop).
			e.awaitUnblock = true // the requester acks the direct grant
			b.expectAcks(e, 1, contXfer)
			b.p.cInvSent.Inc()
			inv := b.p.newMsg(msgInv, addr, b.tile)
			inv.xfer = from
			b.p.send(b.tile, e.owner, inv, controlFlits)
			return
		}
		e.grantFlits = b.p.dataFlits()
		b.expectAcks(e, 1, contAckDataM)
		b.p.cInvSent.Inc()
		b.p.send(b.tile, e.owner, b.p.newMsg(msgInv, addr, b.tile), controlFlits)
	}
}

// atomic invalidates every cached copy, performs the RMW on the functional
// store at the home, and returns the old value. The line ends uncached in
// the L1s (it stays resident in this L2 bank).
//
//glvet:cyclepath
func (b *Bank) atomic(e *dirEntry, addr uint64, from int) {
	e.reqFrom = from
	var targets uint64
	switch e.state {
	case dirShared:
		targets = e.sharers
	case dirOwned:
		targets = bit(e.owner)
	}
	if targets == 0 {
		b.withData(addr, e, contAtomicRMW)
		return
	}
	n := b.invalidateAll(addr, targets)
	b.expectAcks(e, n, contAtomicInv)
}

// runCont resumes the transaction on addr at continuation k. Each case is
// the body of what used to be a scheduled closure; the (cycle, seq) order
// of the events that reach here is identical, so timing is unchanged.
//
//glvet:cyclepath
func (b *Bank) runCont(addr uint64, e *dirEntry, k contKind) {
	switch k {
	case contGrantE:
		b.setDir(e, dirOwned)
		e.owner = e.reqFrom
		e.sharers = bit(e.reqFrom)
		b.grant(e, e.reqFrom, addr, grantE, b.p.dataFlits())
	case contGrantS:
		e.sharers |= bit(e.reqFrom)
		b.grant(e, e.reqFrom, addr, grantS, b.p.dataFlits())
	case contFwdShared:
		b.setDir(e, dirShared)
		e.sharers = bit(e.owner) | bit(e.reqFrom)
		b.afterAckData(addr, e, contGrantSData)
	case contGrantSData:
		b.grant(e, e.reqFrom, addr, grantS, b.p.dataFlits())
	case contGrantM:
		b.setDir(e, dirOwned)
		e.owner = e.reqFrom
		e.sharers = bit(e.reqFrom)
		b.grant(e, e.reqFrom, addr, grantM, e.grantFlits)
	case contInvDone:
		if e.upgrade {
			b.runCont(addr, e, contGrantM)
		} else {
			b.withData(addr, e, contGrantM)
		}
	case contXfer:
		if e.ackXferred {
			// Transfer done: directory flips to the requester; the
			// in-flight Unblock closes the transaction.
			b.setDir(e, dirOwned)
			e.owner = e.reqFrom
			e.sharers = bit(e.reqFrom)
			b.maybeFinish(addr, e)
			return
		}
		// Owner had dropped the line: supply it ourselves.
		e.grantFlits = b.p.dataFlits()
		b.withData(addr, e, contGrantM)
	case contAckDataM:
		b.afterAckData(addr, e, contGrantM)
	case contAtomicInv:
		b.withData(addr, e, contAtomicRMW)
	case contAtomicRMW:
		var old uint64
		switch e.reqKind {
		case AtomicAdd:
			old = b.p.memv.FetchAdd(addr, e.reqOperand)
		case AtomicTAS, AtomicSwap:
			old = b.p.memv.FetchStore(addr, e.reqOperand)
		default:
			panic(fmt.Sprintf("coherence: atomic RMW kind %v", e.reqKind))
		}
		b.setDir(e, dirInvalid)
		e.sharers = 0
		b.markDirty(addr)
		ack := b.p.newMsg(msgAtomicAck, addr, b.tile)
		ack.val = old
		b.p.send(b.tile, e.reqFrom, ack, atomicAckFlits)
		b.finish(addr, e)
	default:
		panic(fmt.Sprintf("coherence: bank %d resuming %#x with cont %d", b.tile, addr, k))
	}
}

// invalidateAll sends plain Invs to every tile in the bitset and returns
// the count.
//
//glvet:cyclepath
func (b *Bank) invalidateAll(addr uint64, targets uint64) int {
	n := 0
	for t := 0; t < b.p.cfg.Cores; t++ {
		if targets&bit(t) != 0 {
			b.p.cInvSent.Inc()
			b.p.send(b.tile, t, b.p.newMsg(msgInv, addr, b.tile), controlFlits)
			n++
		}
	}
	return n
}

// expectAcks arms the in-flight transaction to wait for n Inv/Fwd acks.
//
//glvet:cyclepath
func (b *Bank) expectAcks(e *dirEntry, n int, cont contKind) {
	if n <= 0 {
		panic("coherence: expectAcks with n<=0")
	}
	e.acksLeft = n
	e.ackHadData = false
	e.ackXferred = false
	e.cont = cont
}

// ack consumes one InvAck/FwdAck for an in-flight transaction. Stale acks
// (no transaction waiting) are dropped: they come from races with silent
// clean evictions.
//
//glvet:cyclepath
func (b *Bank) ack(m *msg) {
	e := b.dir[m.addr]
	if e == nil || !e.busy || e.acksLeft == 0 {
		b.p.cAckStale.Inc()
		return
	}
	if m.withData {
		e.ackHadData = true
		b.markDirty(m.addr)
	}
	if m.xferred {
		e.ackXferred = true
	}
	e.acksLeft--
	if e.acksLeft == 0 {
		k := e.cont
		e.cont = contNone
		b.runCont(m.addr, e, k)
	}
}

// afterAckData continues after the data for a transaction whose owner was
// forwarded/invalidated is available: if the ack carried the line it is now
// in this bank; otherwise it must come from L2 or memory.
//
//glvet:cyclepath
func (b *Bank) afterAckData(addr uint64, e *dirEntry, k contKind) {
	if e.ackHadData {
		b.contAt(b.p.cfg.L2DataLatency, e, addr, k)
		return
	}
	b.withData(addr, e, k)
}

// putM absorbs a dirty eviction: the line's data comes home. Directory
// state changes only when no transaction is in flight and the writer is
// still the registered owner; otherwise the in-flight transaction's Fwd/Inv
// will be acked without data and this PutM already delivered it.
//
//glvet:cyclepath
func (b *Bank) putM(m *msg) {
	b.markDirty(m.addr)
	e := b.dir[m.addr]
	if e != nil && !e.busy && e.state == dirOwned && e.owner == m.from {
		b.setDir(e, dirInvalid)
		e.sharers = 0
	}
}

// markDirty installs addr in the L2 array as dirty (data present on-chip).
//
//glvet:cyclepath
func (b *Bank) markDirty(addr uint64) { b.insertL2(addr, cache.StateModified) }

//glvet:cyclepath
func (b *Bank) insertL2(addr uint64, st cache.State) {
	if victim, vstate, evicted := b.l2.Insert(addr, st); evicted && vstate == cache.StateModified {
		_ = victim
		b.p.memWritebacks++
	}
}

// contAt schedules runCont(addr, e, k) after delay cycles.
//
//glvet:cyclepath
func (b *Bank) contAt(delay uint64, e *dirEntry, addr uint64, k contKind) {
	b.p.eng.CallAfter(delay, bankContCB, b, e, addr, uint64(k))
}

// withData resumes the transaction once the line's data is available at
// this bank: immediately after the L2 data-array latency on an L2 hit, or
// after an off-chip fetch on a miss.
//
//glvet:cyclepath
func (b *Bank) withData(addr uint64, e *dirEntry, k contKind) {
	if b.l2.Lookup(addr) != cache.StateInvalid {
		b.contAt(b.p.cfg.L2DataLatency, e, addr, k)
		return
	}
	b.p.memFetches++
	b.p.eng.CallAfter(b.p.cfg.MemLatency, bankFetchCB, b, e, addr, uint64(k))
}

// grant sends a Data reply and holds the line's transaction open until the
// requester's Unblock confirms receipt.
//
//glvet:cyclepath
func (b *Bank) grant(e *dirEntry, to int, addr uint64, g grantState, flits int) {
	if b.p.traceOn {
		//lint:allow allocfree trace emission is opt-in debugging
		b.p.tracer.Emit(b.p.eng.Now(), b.src, "grant %#x to %d (%d flits)", addr, to, flits)
	}
	e.awaitUnblock = true
	gm := b.p.newMsg(msgData, addr, b.tile)
	gm.grant = g
	b.p.send(b.tile, to, gm, flits)
}

// unblock closes the transaction a grant left open. For a 3-hop ownership
// transfer the owner's InvAck and the requester's Unblock both have to
// arrive (in either order) before the line unlocks.
//
//glvet:cyclepath
func (b *Bank) unblock(m *msg) {
	e := b.dir[m.addr]
	if e == nil || !e.busy || !e.awaitUnblock {
		panic(fmt.Sprintf("coherence: bank %d spurious Unblock for %#x", b.tile, m.addr))
	}
	e.awaitUnblock = false
	b.maybeFinish(m.addr, e)
}

// maybeFinish closes the transaction once neither acks nor an unblock are
// outstanding.
//
//glvet:cyclepath
func (b *Bank) maybeFinish(addr uint64, e *dirEntry) {
	if e.acksLeft == 0 && !e.awaitUnblock {
		b.finish(addr, e)
	}
}

// finish closes the in-flight transaction on addr and starts the next
// queued request, if any.
//
//glvet:cyclepath
func (b *Bank) finish(addr uint64, e *dirEntry) {
	if !e.busy {
		panic(fmt.Sprintf("coherence: bank %d finishing idle line %#x", b.tile, addr))
	}
	e.acksLeft = 0
	e.cont = contNone
	if e.waitHead == len(e.waitq) {
		e.waitq = e.waitq[:0]
		e.waitHead = 0
		e.busy = false
		return
	}
	m := e.waitq[e.waitHead]
	e.waitq[e.waitHead] = nil
	e.waitHead++
	if e.waitHead == len(e.waitq) {
		e.waitq = e.waitq[:0]
		e.waitHead = 0
	} else if e.waitHead >= 16 && e.waitHead*2 >= len(e.waitq) {
		// Reclaim the drained prefix once it dominates the backing array,
		// so a continuously-contended line's queue stays bounded.
		n := copy(e.waitq, e.waitq[e.waitHead:])
		for i := n; i < len(e.waitq); i++ {
			e.waitq[i] = nil
		}
		e.waitq = e.waitq[:n]
		e.waitHead = 0
	}
	b.schedule(m)
}

// DirState reports the directory view of addr, for tests.
func (b *Bank) DirState(addr uint64) (state string, owner int, sharers uint64) {
	e := b.dir[b.p.LineAddr(addr)]
	if e == nil {
		return "I", -1, 0
	}
	switch e.state {
	case dirInvalid:
		return "I", -1, 0
	case dirShared:
		return "S", -1, e.sharers
	default:
		return "O", e.owner, e.sharers
	}
}
