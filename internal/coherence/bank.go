package coherence

import (
	"fmt"

	"repro/internal/cache"
)

// dirState is the directory's view of a line.
type dirState byte

const (
	// dirInvalid: no L1 holds the line.
	dirInvalid dirState = iota
	// dirShared: one or more L1s hold read-only copies (sharers bitset).
	dirShared
	// dirOwned: exactly one L1 holds the line in E or M.
	dirOwned
)

type dirEntry struct {
	state   dirState
	owner   int
	sharers uint64 // bitset over tiles
	busy    bool
	waitq   []*msg

	// In-flight transaction bookkeeping.
	acksLeft     int
	ackHadData   bool
	ackXferred   bool
	cont         func()
	awaitUnblock bool
}

// Bank is a tile's slice of the shared distributed L2, including the
// directory for the lines whose home it is. The bank serializes request
// starts (one tag access per L2TagLatency), which is the hot-spot queueing
// that contended software barriers suffer from.
type Bank struct {
	p    *Protocol
	tile int
	l2   *cache.Cache
	dir  map[uint64]*dirEntry
	src  string // precomputed trace source label ("bank.7")

	busyUntil uint64
}

func newBank(p *Protocol, tile int) *Bank {
	return &Bank{
		p:    p,
		tile: tile,
		l2:   cache.New(p.cfg.L2SizePerCore, p.cfg.L2Ways, p.cfg.LineSize),
		dir:  make(map[uint64]*dirEntry),
		src:  fmt.Sprintf("bank.%d", tile),
	}
}

func bit(tile int) uint64 { return 1 << uint(tile) }

// setDir moves the directory entry to state s, counting the transition in
// the coh.dir.transitions metric when the state actually changes.
func (b *Bank) setDir(e *dirEntry, s dirState) {
	if e.state != s {
		b.p.cDirTrans.Inc()
	}
	e.state = s
}

func (b *Bank) entry(addr uint64) *dirEntry {
	e := b.dir[addr]
	if e == nil {
		e = &dirEntry{}
		b.dir[addr] = e
	}
	return e
}

// receive handles a protocol message addressed to this home bank.
func (b *Bank) receive(m *msg) {
	switch m.t {
	case msgGetS, msgGetX, msgAtomic:
		e := b.entry(m.addr)
		if e.busy {
			e.waitq = append(e.waitq, m)
			b.p.cReqQueued.Inc()
			return
		}
		e.busy = true
		b.schedule(m)
	case msgInvAck, msgFwdAck:
		b.ack(m)
	case msgPutM:
		b.putM(m)
	case msgUnblock:
		b.unblock(m)
	default:
		panic(fmt.Sprintf("coherence: bank %d received %v", b.tile, m.t))
	}
}

// schedule charges the bank's tag-access occupancy and then processes m.
func (b *Bank) schedule(m *msg) {
	now := b.p.eng.Now()
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	b.busyUntil = start + b.p.cfg.L2TagLatency
	b.p.eng.At(b.busyUntil, func() { b.process(m) })
}

func (b *Bank) process(m *msg) {
	e := b.entry(m.addr)
	if b.p.traceOn {
		b.p.tracer.Emit(b.p.eng.Now(), b.src, "%v %#x from %d (dir=%v sharers=%b)", m.t, m.addr, m.from, e.state, e.sharers)
	}
	switch m.t {
	case msgGetS:
		b.getS(e, m)
	case msgGetX:
		b.getX(e, m)
	case msgAtomic:
		b.atomic(e, m)
	default:
		panic(fmt.Sprintf("coherence: bank %d processing %v", b.tile, m.t))
	}
}

func (b *Bank) getS(e *dirEntry, m *msg) {
	switch e.state {
	case dirInvalid:
		b.withData(m.addr, func() {
			b.setDir(e, dirOwned)
			e.owner = m.from
			e.sharers = bit(m.from)
			b.grant(e, m.from, m.addr, grantE, b.p.dataFlits())
		})
	case dirShared:
		b.withData(m.addr, func() {
			e.sharers |= bit(m.from)
			b.grant(e, m.from, m.addr, grantS, b.p.dataFlits())
		})
	case dirOwned:
		if e.owner == m.from {
			// The owner silently dropped a clean line and re-reads it.
			b.withData(m.addr, func() {
				b.grant(e, m.from, m.addr, grantE, b.p.dataFlits())
			})
			return
		}
		owner := e.owner
		b.expectAcks(e, 1, func() {
			b.setDir(e, dirShared)
			e.sharers = bit(owner) | bit(m.from)
			b.afterAckData(m.addr, func() {
				b.grant(e, m.from, m.addr, grantS, b.p.dataFlits())
			})
		})
		b.p.cFwdSent.Inc()
		b.p.send(b.tile, owner, &msg{t: msgFwd, addr: m.addr, from: b.tile}, controlFlits)
	}
}

func (b *Bank) getX(e *dirEntry, m *msg) {
	grantTo := func(flits int) {
		b.setDir(e, dirOwned)
		e.owner = m.from
		e.sharers = bit(m.from)
		b.grant(e, m.from, m.addr, grantM, flits)
	}
	switch e.state {
	case dirInvalid:
		b.withData(m.addr, func() { grantTo(b.p.dataFlits()) })
	case dirShared:
		wasSharer := e.sharers&bit(m.from) != 0
		others := e.sharers &^ bit(m.from)
		flits := b.p.dataFlits()
		if wasSharer {
			flits = controlFlits // upgrade: permission only
		}
		if others == 0 {
			if wasSharer {
				b.p.eng.After(b.p.cfg.L2DataLatency, func() { grantTo(flits) })
			} else {
				b.withData(m.addr, func() { grantTo(flits) })
			}
			return
		}
		n := b.invalidateAll(m.addr, others)
		b.expectAcks(e, n, func() {
			if wasSharer {
				grantTo(flits)
				return
			}
			b.withData(m.addr, func() { grantTo(flits) })
		})
	case dirOwned:
		if e.owner == m.from {
			// Owner silently dropped the clean line, now writes it.
			b.withData(m.addr, func() { grantTo(b.p.dataFlits()) })
			return
		}
		owner := e.owner
		if b.p.cfg.ThreeHopOwnership {
			// Ask the owner to hand the line straight to the requester;
			// fall back to the home-relay path if the owner no longer
			// has it (silent clean drop).
			e.awaitUnblock = true // the requester acks the direct grant
			b.expectAcks(e, 1, func() {
				if e.ackXferred {
					// Transfer done: directory flips to the requester;
					// the in-flight Unblock closes the transaction.
					b.setDir(e, dirOwned)
					e.owner = m.from
					e.sharers = bit(m.from)
					b.maybeFinish(m.addr, e)
					return
				}
				// Owner had dropped the line: supply it ourselves.
				b.withData(m.addr, func() { grantTo(b.p.dataFlits()) })
			})
			b.p.cInvSent.Inc()
			b.p.send(b.tile, owner, &msg{t: msgInv, addr: m.addr, from: b.tile, xfer: m.from}, controlFlits)
			return
		}
		b.expectAcks(e, 1, func() {
			b.afterAckData(m.addr, func() { grantTo(b.p.dataFlits()) })
		})
		b.p.cInvSent.Inc()
		b.p.send(b.tile, owner, &msg{t: msgInv, addr: m.addr, from: b.tile, xfer: -1}, controlFlits)
	}
}

// atomic invalidates every cached copy, performs the RMW on the functional
// store at the home, and returns the old value. The line ends uncached in
// the L1s (it stays resident in this L2 bank).
func (b *Bank) atomic(e *dirEntry, m *msg) {
	doRMW := func() {
		b.withData(m.addr, func() {
			old := b.p.memv.RMW(m.addr, rmwFunc(m.kind, m.operand))
			b.setDir(e, dirInvalid)
			e.sharers = 0
			b.markDirty(m.addr)
			b.p.send(b.tile, m.from, &msg{t: msgAtomicAck, addr: m.addr, from: b.tile, val: old}, atomicAckFlits)
			b.finish(m.addr, e)
		})
	}
	var targets uint64
	switch e.state {
	case dirShared:
		targets = e.sharers
	case dirOwned:
		targets = bit(e.owner)
	}
	if targets == 0 {
		doRMW()
		return
	}
	n := b.invalidateAll(m.addr, targets)
	b.expectAcks(e, n, doRMW)
}

func rmwFunc(kind AccessKind, operand uint64) func(uint64) uint64 {
	switch kind {
	case AtomicAdd:
		return func(v uint64) uint64 { return v + operand }
	case AtomicTAS, AtomicSwap:
		return func(uint64) uint64 { return operand }
	}
	panic(fmt.Sprintf("coherence: rmwFunc(%v)", kind))
}

// invalidateAll sends plain Invs to every tile in the bitset and returns
// the count.
func (b *Bank) invalidateAll(addr uint64, targets uint64) int {
	n := 0
	for t := 0; t < b.p.cfg.Cores; t++ {
		if targets&bit(t) != 0 {
			b.p.cInvSent.Inc()
			b.p.send(b.tile, t, &msg{t: msgInv, addr: addr, from: b.tile, xfer: -1}, controlFlits)
			n++
		}
	}
	return n
}

// expectAcks arms the in-flight transaction to wait for n Inv/Fwd acks.
func (b *Bank) expectAcks(e *dirEntry, n int, cont func()) {
	if n <= 0 {
		panic("coherence: expectAcks with n<=0")
	}
	e.acksLeft = n
	e.ackHadData = false
	e.ackXferred = false
	e.cont = cont
}

// ack consumes one InvAck/FwdAck for an in-flight transaction. Stale acks
// (no transaction waiting) are dropped: they come from races with silent
// clean evictions.
func (b *Bank) ack(m *msg) {
	e := b.dir[m.addr]
	if e == nil || !e.busy || e.acksLeft == 0 {
		b.p.cAckStale.Inc()
		return
	}
	if m.withData {
		e.ackHadData = true
		b.markDirty(m.addr)
	}
	if m.xferred {
		e.ackXferred = true
	}
	e.acksLeft--
	if e.acksLeft == 0 {
		cont := e.cont
		e.cont = nil
		cont()
	}
}

// afterAckData continues after the data for a transaction whose owner was
// forwarded/invalidated is available: if the ack carried the line it is now
// in this bank; otherwise it must come from L2 or memory.
func (b *Bank) afterAckData(addr uint64, cont func()) {
	e := b.dir[addr]
	if e != nil && e.ackHadData {
		b.p.eng.After(b.p.cfg.L2DataLatency, cont)
		return
	}
	b.withData(addr, cont)
}

// putM absorbs a dirty eviction: the line's data comes home. Directory
// state changes only when no transaction is in flight and the writer is
// still the registered owner; otherwise the in-flight transaction's Fwd/Inv
// will be acked without data and this PutM already delivered it.
func (b *Bank) putM(m *msg) {
	b.markDirty(m.addr)
	e := b.dir[m.addr]
	if e != nil && !e.busy && e.state == dirOwned && e.owner == m.from {
		b.setDir(e, dirInvalid)
		e.sharers = 0
	}
}

// markDirty installs addr in the L2 array as dirty (data present on-chip).
func (b *Bank) markDirty(addr uint64) { b.insertL2(addr, cache.StateModified) }

func (b *Bank) insertL2(addr uint64, st cache.State) {
	if victim, vstate, evicted := b.l2.Insert(addr, st); evicted && vstate == cache.StateModified {
		_ = victim
		b.p.memWritebacks++
	}
}

// withData runs cont once the line's data is available at this bank:
// immediately after the L2 data-array latency on an L2 hit, or after an
// off-chip fetch on a miss.
func (b *Bank) withData(addr uint64, cont func()) {
	if b.l2.Lookup(addr) != cache.StateInvalid {
		b.p.eng.After(b.p.cfg.L2DataLatency, cont)
		return
	}
	b.p.memFetches++
	b.p.eng.After(b.p.cfg.MemLatency, func() {
		b.insertL2(addr, cache.StateShared)
		b.p.eng.After(b.p.cfg.L2DataLatency, cont)
	})
}

// grant sends a Data reply and holds the line's transaction open until the
// requester's Unblock confirms receipt.
func (b *Bank) grant(e *dirEntry, to int, addr uint64, g grantState, flits int) {
	if b.p.traceOn {
		b.p.tracer.Emit(b.p.eng.Now(), b.src, "grant %#x to %d (%d flits)", addr, to, flits)
	}
	e.awaitUnblock = true
	b.p.send(b.tile, to, &msg{t: msgData, addr: addr, from: b.tile, grant: g}, flits)
}

// unblock closes the transaction a grant left open. For a 3-hop ownership
// transfer the owner's InvAck and the requester's Unblock both have to
// arrive (in either order) before the line unlocks.
func (b *Bank) unblock(m *msg) {
	e := b.dir[m.addr]
	if e == nil || !e.busy || !e.awaitUnblock {
		panic(fmt.Sprintf("coherence: bank %d spurious Unblock for %#x", b.tile, m.addr))
	}
	e.awaitUnblock = false
	b.maybeFinish(m.addr, e)
}

// maybeFinish closes the transaction once neither acks nor an unblock are
// outstanding.
func (b *Bank) maybeFinish(addr uint64, e *dirEntry) {
	if e.acksLeft == 0 && !e.awaitUnblock {
		b.finish(addr, e)
	}
}

// finish closes the in-flight transaction on addr and starts the next
// queued request, if any.
func (b *Bank) finish(addr uint64, e *dirEntry) {
	if !e.busy {
		panic(fmt.Sprintf("coherence: bank %d finishing idle line %#x", b.tile, addr))
	}
	e.acksLeft = 0
	e.cont = nil
	if len(e.waitq) == 0 {
		e.busy = false
		return
	}
	m := e.waitq[0]
	e.waitq = e.waitq[1:]
	b.schedule(m)
}

// DirState reports the directory view of addr, for tests.
func (b *Bank) DirState(addr uint64) (state string, owner int, sharers uint64) {
	e := b.dir[b.p.LineAddr(addr)]
	if e == nil {
		return "I", -1, 0
	}
	switch e.state {
	case dirInvalid:
		return "I", -1, 0
	case dirShared:
		return "S", -1, e.sharers
	default:
		return "O", e.owner, e.sharers
	}
}
