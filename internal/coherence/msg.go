// Package coherence implements the directory-based cache-coherence protocol
// of the simulated CMP: private L1 caches kept coherent by directories at
// the distributed shared-L2 home banks, exchanging messages over the mesh.
//
// Design points (see DESIGN.md §5):
//
//   - The directory is blocking: one transaction in flight per line; later
//     requests queue at the home bank in arrival order.
//   - The L2 is non-inclusive/non-exclusive (NINE): the L2 array models only
//     on-chip data presence/timing, while the map-based directory tracks L1
//     copies exactly, so L2 evictions never require recalls.
//   - Atomic read-modify-writes execute at the home bank after invalidating
//     every cached copy, leaving the line uncached in L1s — so a contended
//     barrier counter produces the invalidate/refetch storm that makes
//     centralized software barriers collapse (the paper's motivation).
//   - Data values are functional-global (package mem); messages carry
//     timing, classes and sizes, not payload bytes.
package coherence

import (
	"fmt"

	"repro/internal/stats"
)

// AccessKind distinguishes the operations a core can issue to its L1.
type AccessKind int

const (
	// Read is a plain load.
	Read AccessKind = iota
	// Write is a plain store.
	Write
	// AtomicAdd is fetch&add: returns the old value, adds the operand.
	AtomicAdd
	// AtomicTAS is test&set: returns the old value, stores the operand.
	AtomicTAS
	// AtomicSwap exchanges the word with the operand, returning the old
	// value. (Timing-wise identical to AtomicTAS; kept separate for
	// workload readability.)
	AtomicSwap
	// LoadLinked acquires the line in Modified state and returns the
	// current value; a following StoreConditional succeeds only if the
	// line is still held. This is how 2010-era cores (PowerPC LL/SC)
	// implement read-modify-writes: the line bounces between contenders.
	LoadLinked
)

// IsAtomic reports whether the access is a remote atomic RMW.
func (k AccessKind) IsAtomic() bool { return k >= AtomicAdd && k <= AtomicSwap }

// String names the access kind.
func (k AccessKind) String() string {
	switch k {
	case Read:
		return "Read"
	case Write:
		return "Write"
	case AtomicAdd:
		return "AtomicAdd"
	case AtomicTAS:
		return "AtomicTAS"
	case AtomicSwap:
		return "AtomicSwap"
	case LoadLinked:
		return "LoadLinked"
	}
	return fmt.Sprintf("AccessKind(%d)", int(k))
}

type msgType int

const (
	msgGetS      msgType = iota // L1 -> home: read miss
	msgGetX                     // L1 -> home: write miss or upgrade
	msgAtomic                   // L1 -> home: atomic RMW
	msgData                     // home -> L1: data/permission grant
	msgAtomicAck                // home -> L1: atomic result
	msgInv                      // home -> L1: invalidate
	msgInvAck                   // L1 -> home: invalidation done
	msgFwd                      // home -> owner L1: downgrade, supply data
	msgFwdAck                   // owner L1 -> home: downgrade done
	msgPutM                     // L1 -> home: dirty eviction writeback
	msgUnblock                  // L1 -> home: grant received; close the txn
)

func (t msgType) String() string {
	switch t {
	case msgGetS:
		return "GetS"
	case msgGetX:
		return "GetX"
	case msgAtomic:
		return "Atomic"
	case msgData:
		return "Data"
	case msgAtomicAck:
		return "AtomicAck"
	case msgInv:
		return "Inv"
	case msgInvAck:
		return "InvAck"
	case msgFwd:
		return "Fwd"
	case msgFwdAck:
		return "FwdAck"
	case msgPutM:
		return "PutM"
	case msgUnblock:
		return "Unblock"
	}
	return fmt.Sprintf("msgType(%d)", int(t))
}

// toHome reports whether this message type is sunk at a home bank (true) or
// at an L1 controller (false).
func (t msgType) toHome() bool {
	switch t {
	case msgGetS, msgGetX, msgAtomic, msgInvAck, msgFwdAck, msgPutM, msgUnblock:
		return true
	}
	return false
}

// class returns the Figure 7 traffic class of the message type.
func (t msgType) class() stats.MsgClass {
	switch t {
	case msgGetS, msgGetX, msgAtomic:
		return stats.ClassRequest
	case msgData, msgAtomicAck:
		return stats.ClassReply
	default:
		return stats.ClassCoherence
	}
}

// msg is a protocol message. Line addresses are always line-aligned.
type msg struct {
	t    msgType
	addr uint64 // line address
	from int    // sending tile

	// grant is the state conferred by a msgData reply.
	grant grantState
	// kind/operand describe the RMW for msgAtomic.
	kind    AccessKind
	operand uint64
	// val carries the old value in msgAtomicAck.
	val uint64
	// withData marks acks that carry a full line (dirty owner), and on an
	// InvAck that the owner transferred the line directly to xfer.
	withData bool
	// xfer >= 0 on an Inv asks the owner to forward the line straight to
	// that requester (3-hop ownership transfer); -1 means plain
	// invalidation. Zero value is adjusted at construction.
	xfer int
	// xferred on an InvAck confirms the owner handed the line directly to
	// the requester.
	xferred bool

	// next links free messages in the protocol's recycling pool.
	next *msg
}

// grantState is the permission carried by a Data reply.
type grantState byte

const (
	grantS grantState = iota
	grantE
	grantM
)
