package coherence

import (
	"fmt"
	"sort"

	"repro/internal/cache"
)

// CheckInvariants verifies the protocol's global correctness conditions at
// a quiescent point (no transactions in flight). It returns the first
// violation found:
//
//   - SWMR: at most one L1 holds any line in a writable (M/E) state, and
//     no line is simultaneously writable in one L1 and readable in another.
//   - Directory accuracy: a writable L1 copy implies the directory records
//     that L1 as the owner. (The converse does not hold: silent clean
//     evictions legitimately leave stale directory entries.)
//   - Sharer soundness: an L1 holding a line Shared is listed in the
//     directory's sharer set for that line.
//
// Call it from tests after the mesh has drained; calling mid-transaction
// reports spurious violations.
func (p *Protocol) CheckInvariants() error {
	type holder struct {
		tile int
		st   cache.State
	}
	holders := make(map[uint64][]holder)
	for tile, l1 := range p.l1s {
		tile := tile
		l1.c.ForEach(func(line uint64, st cache.State) {
			holders[line] = append(holders[line], holder{tile: tile, st: st})
		})
	}
	// Check lines in address order so the reported violation (the first
	// found) is deterministic.
	lines := make([]uint64, 0, len(holders))
	for line := range holders {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		hs := holders[line]
		writers := 0
		readers := 0
		writerTile := -1
		for _, h := range hs {
			if h.st.Writable() {
				writers++
				writerTile = h.tile
			} else {
				readers++
			}
		}
		if writers > 1 {
			return fmt.Errorf("coherence: SWMR violation on %#x: %d writable copies (%v)", line, writers, hs)
		}
		if writers == 1 && readers > 0 {
			return fmt.Errorf("coherence: SWMR violation on %#x: writable copy at %d coexists with %d readers", line, writerTile, readers)
		}
		home := p.banks[p.HomeOf(line)]
		e := home.dir[line]
		if writers == 1 {
			if e == nil || e.state != dirOwned || e.owner != writerTile {
				return fmt.Errorf("coherence: directory inaccuracy on %#x: tile %d holds writable copy, dir=%v", line, writerTile, dirDesc(e))
			}
		}
		for _, h := range hs {
			if h.st == cache.StateShared {
				if e == nil {
					return fmt.Errorf("coherence: no directory entry for shared line %#x held by %d", line, h.tile)
				}
				listed := false
				switch e.state {
				case dirShared:
					listed = e.sharers&bit(h.tile) != 0
				case dirOwned:
					// A just-downgraded owner is tracked in sharers.
					listed = e.sharers&bit(h.tile) != 0 || e.owner == h.tile
				}
				if !listed {
					return fmt.Errorf("coherence: sharer %d of %#x not listed in directory (%s)", h.tile, line, dirDesc(e))
				}
			}
		}
	}
	return nil
}

func dirDesc(e *dirEntry) string {
	if e == nil {
		return "<none>"
	}
	return fmt.Sprintf("{state:%v owner:%d sharers:%b busy:%v}", e.state, e.owner, e.sharers, e.busy)
}

// Quiescent reports whether no transaction is in flight anywhere (all
// directory entries idle and the mesh empty) — the precondition for
// CheckInvariants.
func (p *Protocol) Quiescent() bool {
	if p.mesh.InFlight() != 0 {
		return false
	}
	for _, b := range p.banks {
		for _, e := range b.dir {
			if e.busy {
				return false
			}
		}
	}
	for _, l1 := range p.l1s {
		if l1.pendSet {
			return false
		}
	}
	return true
}

func (s dirState) String() string {
	switch s {
	case dirInvalid:
		return "I"
	case dirShared:
		return "S"
	case dirOwned:
		return "O"
	}
	return fmt.Sprintf("dirState(%d)", byte(s))
}
