package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/mem"
)

// TestStressRandomTraffic drives random concurrent reads, writes, atomics
// and LL/SC pairs from every core over a small shared address pool, then
// checks the SWMR and directory invariants at quiescence, plus packet
// conservation.
func TestStressRandomTraffic(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			runStress(t, seed, 16, 2000)
		})
	}
}

func runStress(t *testing.T, seed int64, cores, opsPerCore int) {
	t.Helper()
	eng := engine.New()
	cfg := config.Default(cores)
	prot := New(eng, cfg, mem.NewStore())
	runStressOn(t, prot, eng, seed, cores, opsPerCore)
}

// runStressOn drives the random-op stress workload on a caller-built
// protocol (used to stress protocol variants too).
func runStressOn(t *testing.T, prot *Protocol, eng *engine.Engine, seed int64, cores, opsPerCore int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))

	// A small pool of lines shared by everyone: high contention.
	pool := make([]uint64, 24)
	for i := range pool {
		pool[i] = 0x4000_0000 + uint64(i)*uint64(prot.cfg.LineSize)
	}

	// Each core issues ops back to back through its own driver.
	remaining := cores * opsPerCore
	var drive func(tile, left int)
	drive = func(tile, left int) {
		if left == 0 {
			remaining -= opsPerCore
			return
		}
		addr := pool[r.Intn(len(pool))]
		next := func(uint64) { drive(tile, left-1) }
		switch r.Intn(5) {
		case 0:
			prot.L1(tile).Access(Read, addr, 0, 0, false, next)
		case 1:
			prot.L1(tile).Access(Write, addr, 0, uint64(r.Intn(100)), true, next)
		case 2:
			prot.L1(tile).Access(AtomicAdd, addr, 1, 0, false, next)
		case 3:
			prot.L1(tile).Access(AtomicTAS, addr, uint64(tile), 0, false, next)
		default:
			prot.L1(tile).Access(LoadLinked, addr, 0, 0, false, func(v uint64) {
				// SC may fail; that is fine — just continue.
				prot.L1(tile).StoreConditional(addr, v+1)
				drive(tile, left-1)
			})
		}
	}
	for tile := 0; tile < cores; tile++ {
		drive(tile, opsPerCore)
	}
	for i := 0; i < 50_000_000 && remaining > 0; i++ {
		eng.Step()
	}
	if remaining != 0 {
		t.Fatalf("stress hung: %d ops outstanding", remaining)
	}
	// Drain in-flight acks/unblocks.
	for i := 0; i < 1_000_000 && !prot.Quiescent(); i++ {
		eng.Step()
	}
	if !prot.Quiescent() {
		t.Fatal("system did not quiesce")
	}
	if err := prot.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if prot.Mesh().InFlight() != 0 {
		t.Errorf("%d packets still in flight", prot.Mesh().InFlight())
	}
}

// TestPropInvariantsUnderRandomSchedules: quick-checked small stress runs.
func TestPropInvariantsUnderRandomSchedules(t *testing.T) {
	f := func(seed int64) bool {
		eng := engine.New()
		cfg := config.Default(8)
		prot := New(eng, cfg, mem.NewStore())
		r := rand.New(rand.NewSource(seed))
		pool := []uint64{0x1000, 0x1040, 0x1080}
		left := 8 * 50
		var drive func(tile, n int)
		drive = func(tile, n int) {
			if n == 0 {
				return
			}
			addr := pool[r.Intn(len(pool))]
			cont := func(uint64) { left--; drive(tile, n-1) }
			switch r.Intn(3) {
			case 0:
				prot.L1(tile).Access(Read, addr, 0, 0, false, cont)
			case 1:
				prot.L1(tile).Access(Write, addr, 0, 1, true, cont)
			default:
				prot.L1(tile).Access(AtomicAdd, addr, 1, 0, false, cont)
			}
		}
		for tile := 0; tile < 8; tile++ {
			drive(tile, 50)
		}
		for i := 0; i < 10_000_000 && left > 0; i++ {
			eng.Step()
		}
		if left != 0 {
			return false
		}
		for i := 0; i < 100_000 && !prot.Quiescent(); i++ {
			eng.Step()
		}
		return prot.Quiescent() && prot.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestAtomicSumUnderContention: total of concurrent fetch&adds is exact.
func TestAtomicSumUnderContention(t *testing.T) {
	eng := engine.New()
	cfg := config.Default(16)
	prot := New(eng, cfg, mem.NewStore())
	addr := uint64(0x9000)
	const per = 25
	left := 16 * per
	var drive func(tile, n int)
	drive = func(tile, n int) {
		if n == 0 {
			return
		}
		prot.L1(tile).Access(AtomicAdd, addr, 1, 0, false, func(uint64) {
			left--
			drive(tile, n-1)
		})
	}
	for tile := 0; tile < 16; tile++ {
		drive(tile, per)
	}
	for i := 0; i < 10_000_000 && left > 0; i++ {
		eng.Step()
	}
	if left != 0 {
		t.Fatal("atomics did not complete")
	}
	if got := prot.Memory().Load(addr); got != 16*per {
		t.Errorf("sum %d, want %d", got, 16*per)
	}
}
