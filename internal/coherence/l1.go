package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/trace"
)

// Timeline span names: one spanCohMiss per miss round-trip (request to
// fill), one spanCohAtomic per remote atomic round-trip, both on the
// requesting tile's core track with the line address as arg. They nest
// inside the CPU op span that issued the access.
const (
	spanCohMiss   = "coh.miss"
	spanCohAtomic = "coh.atomic"
)

// L1 is a tile's private L1 data cache controller. Cores issue at most one
// access at a time (in-order, blocking), so the controller holds at most
// one pending transaction — kept by value, so the steady state allocates
// nothing per access.
type L1 struct {
	p    *Protocol
	tile int
	c    *cache.Cache
	src  string // precomputed trace source label ("l1.3")

	pend    l1Pending
	pendSet bool

	// stage carries the operation whose completion event is in flight (an
	// L1 hit charging its latency, or a fill/atomic-ack finishing). The
	// core is blocking, so at most one completion is staged at a time. A
	// staged callback must copy the slot to locals before invoking done:
	// done resumes the program, whose next access restages immediately.
	stage l1Pending

	// watch implements efficient busy-wait simulation: a spinning core
	// re-reads a cached line every cycle with no observable effect until
	// the line is invalidated, so the core model sleeps and is woken here
	// instead. Timing is identical to per-cycle re-loads.
	watchLine uint64
	watchFn   func()
}

type l1Pending struct {
	kind     AccessKind
	addr     uint64 // full address
	line     uint64 // line address
	operand  uint64
	value    uint64
	hasValue bool
	start    uint64 // cycle the transaction left the L1 (timeline span start)
	done     func(val uint64)
}

func newL1(p *Protocol, tile int) *L1 {
	return &L1{
		p:    p,
		tile: tile,
		c:    cache.New(p.cfg.L1Size, p.cfg.L1Ways, p.cfg.LineSize),
		src:  fmt.Sprintf("l1.%d", tile),
	}
}

// l1ReadHitCB completes a read hit after the L1 hit latency.
func l1ReadHitCB(recv, _ any, _, _ uint64) {
	l := recv.(*L1)
	addr, done := l.stage.addr, l.stage.done
	done(l.p.memv.Load(addr))
}

// l1LLHitCB completes a LoadLinked that hit a writable line.
func l1LLHitCB(recv, _ any, _, _ uint64) {
	l := recv.(*L1)
	st := l.stage
	if l.c.Peek(st.line) == cache.StateExclusive {
		l.c.SetState(st.line, cache.StateModified)
	}
	st.done(l.p.memv.Load(st.addr))
}

// l1WriteHitCB completes a write hit after the L1 hit latency.
func l1WriteHitCB(recv, _ any, _, _ uint64) {
	l := recv.(*L1)
	st := l.stage
	// The line can be stolen by an invalidation between the hit and this
	// cycle; replay the store as a miss then (store replay, as an in-order
	// pipeline would).
	cur := l.c.Peek(st.line)
	if !cur.Writable() {
		st.start = l.p.eng.Now()
		l.pend = st
		l.pendSet = true
		l.request(msgGetX, st.line)
		return
	}
	if cur == cache.StateExclusive {
		l.c.SetState(st.line, cache.StateModified)
	}
	if st.hasValue {
		l.p.memv.StoreWord(st.addr, st.value)
	}
	st.done(0)
}

// Access issues one memory operation. done is called exactly once, at the
// cycle the operation completes, with the loaded/old value (loads and
// atomics) or 0 (stores). For stores, hasValue=true writes value to the
// functional store at completion time (used for synchronization variables;
// bulk data stores pass hasValue=false).
//
//glvet:cyclepath
func (l *L1) Access(kind AccessKind, addr, operand, value uint64, hasValue bool, done func(val uint64)) {
	if l.pendSet {
		panic(fmt.Sprintf("coherence: L1 %d already has a pending access (line %#x)", l.tile, l.pend.line))
	}
	line := l.p.LineAddr(addr)

	switch kind {
	case Read:
		if st := l.c.Lookup(addr); st != cache.StateInvalid {
			l.stage = l1Pending{kind: kind, addr: addr, line: line, done: done}
			l.p.eng.CallAfter(l.p.cfg.L1HitLatency, l1ReadHitCB, l, nil, 0, 0)
			return
		}
		l.setPend(kind, addr, line, operand, value, hasValue, done)
		l.request(msgGetS, line)
	case LoadLinked:
		st := l.c.Lookup(addr)
		if st.Writable() {
			l.stage = l1Pending{kind: kind, addr: addr, line: line, done: done}
			l.p.eng.CallAfter(l.p.cfg.L1HitLatency, l1LLHitCB, l, nil, 0, 0)
			return
		}
		// Shared or absent: take ownership so the following
		// StoreConditional can succeed locally.
		l.setPend(kind, addr, line, operand, value, hasValue, done)
		l.request(msgGetX, line)
	case Write:
		st := l.c.Lookup(addr)
		if st.Writable() {
			l.stage = l1Pending{kind: kind, addr: addr, line: line, operand: operand, value: value, hasValue: hasValue, done: done}
			l.p.eng.CallAfter(l.p.cfg.L1HitLatency, l1WriteHitCB, l, nil, 0, 0)
			return
		}
		// Shared or absent: need ownership from the home.
		l.setPend(kind, addr, line, operand, value, hasValue, done)
		l.request(msgGetX, line)
	default: // atomics always go to the home bank
		if !kind.IsAtomic() {
			panic(fmt.Sprintf("coherence: unknown access kind %v", kind))
		}
		l.setPend(kind, addr, line, operand, value, hasValue, done)
		home := l.p.HomeOf(line)
		m := l.p.newMsg(msgAtomic, line, l.tile)
		m.kind, m.operand = kind, operand
		l.p.send(l.tile, home, m, atomicReqFlits)
	}
}

//glvet:cyclepath
func (l *L1) setPend(kind AccessKind, addr, line, operand, value uint64, hasValue bool, done func(val uint64)) {
	l.pend = l1Pending{kind: kind, addr: addr, line: line, operand: operand, value: value, hasValue: hasValue, start: l.p.eng.Now(), done: done}
	l.pendSet = true
}

// Busy reports whether an access is outstanding.
func (l *L1) Busy() bool { return l.pendSet }

// HitLatency returns the configured L1 hit latency.
func (l *L1) HitLatency() uint64 { return l.p.cfg.L1HitLatency }

// TryReadHit performs a load if it hits in the L1 (updating LRU and hit
// counters) and reports whether it did. Misses are untouched (no counter
// double-count): the caller falls back to Access.
func (l *L1) TryReadHit(addr uint64) bool {
	if l.c.Peek(addr) == cache.StateInvalid {
		return false
	}
	l.c.Lookup(addr)
	return true
}

// TryWriteHit performs a store if the line is already writable, reporting
// whether it did. Used only for bulk (valueless) stores.
func (l *L1) TryWriteHit(addr uint64) bool {
	st := l.c.Peek(addr)
	if !st.Writable() {
		return false
	}
	l.c.Lookup(addr)
	if st == cache.StateExclusive {
		l.c.SetState(l.p.LineAddr(addr), cache.StateModified)
	}
	return true
}

//glvet:cyclepath
func (l *L1) request(t msgType, line uint64) {
	home := l.p.HomeOf(line)
	l.p.send(l.tile, home, l.p.newMsg(t, line, l.tile), controlFlits)
}

// receive handles protocol messages addressed to this L1. Every message is
// consumed synchronously by its handler, so it is recycled on return.
//
//glvet:cyclepath
func (l *L1) receive(m *msg) {
	switch m.t {
	case msgData:
		l.fill(m)
	case msgAtomicAck:
		l.finishAtomic(m)
	case msgInv:
		l.invalidate(m)
	case msgFwd:
		l.forward(m)
	default:
		panic(fmt.Sprintf("coherence: L1 %d received %v", l.tile, m.t))
	}
	l.p.freeMsg(m)
}

// l1FillCB completes the access a granted line was filled for.
func l1FillCB(recv, _ any, _, _ uint64) {
	l := recv.(*L1)
	st := l.stage
	switch st.kind {
	case Read, LoadLinked:
		if st.kind == LoadLinked && l.c.Peek(st.line) == cache.StateExclusive {
			l.c.SetState(st.line, cache.StateModified)
		}
		st.done(l.p.memv.Load(st.addr))
	case Write:
		if hasLine := l.c.Peek(st.line); hasLine == cache.StateExclusive {
			l.c.SetState(st.line, cache.StateModified)
		}
		if st.hasValue {
			l.p.memv.StoreWord(st.addr, st.value)
		}
		st.done(0)
	default:
		panic(fmt.Sprintf("coherence: L1 %d Data fill for %v", l.tile, st.kind))
	}
}

// fill installs a granted line and completes the pending load/store.
//
//glvet:cyclepath
func (l *L1) fill(m *msg) {
	if !l.pendSet || l.pend.line != m.addr {
		panic(fmt.Sprintf("coherence: L1 %d got Data for %#x without matching pending access", l.tile, m.addr))
	}
	var st cache.State
	switch m.grant {
	case grantS:
		st = cache.StateShared
	case grantE:
		st = cache.StateExclusive
	case grantM:
		st = cache.StateModified
	}
	if victim, vstate, evicted := l.c.Insert(m.addr, st); evicted {
		if vstate == cache.StateModified {
			home := l.p.HomeOf(victim)
			wb := l.p.newMsg(msgPutM, victim, l.tile)
			wb.withData = true
			l.p.send(l.tile, home, wb, l.p.dataFlits())
		}
		// Shared/Exclusive clean victims are dropped silently; the
		// directory tolerates stale sharer bits (spurious Inv is acked).
	}
	l.p.tl.Span(trace.CoreTrack(l.tile), spanCohMiss, l.pend.start, l.p.eng.Now(), 0, m.addr)
	l.stage = l.pend
	l.pend = l1Pending{}
	l.pendSet = false
	// Grant-ack: the home keeps the line's transaction open until the
	// requester confirms the grant arrived, so a later invalidation can
	// never overtake the grant in the network.
	home := l.p.HomeOf(m.addr)
	l.p.send(l.tile, home, l.p.newMsg(msgUnblock, m.addr, l.tile), controlFlits)
	l.p.eng.CallAfter(l.p.cfg.L1HitLatency, l1FillCB, l, nil, 0, 0)
}

// l1AtomicCB completes an atomic once its ack has been charged the L1
// latency; the old value rides in a.
func l1AtomicCB(recv, _ any, a, _ uint64) {
	l := recv.(*L1)
	done := l.stage.done
	done(a)
}

//glvet:cyclepath
func (l *L1) finishAtomic(m *msg) {
	if !l.pendSet || l.pend.line != m.addr || !l.pend.kind.IsAtomic() {
		panic(fmt.Sprintf("coherence: L1 %d got AtomicAck for %#x without matching pending atomic", l.tile, m.addr))
	}
	l.p.tl.Span(trace.CoreTrack(l.tile), spanCohAtomic, l.pend.start, l.p.eng.Now(), 0, m.addr)
	l.stage = l.pend
	l.pend = l1Pending{}
	l.pendSet = false
	l.p.eng.CallAfter(l.p.cfg.L1HitLatency, l1AtomicCB, l, nil, m.val, 0)
}

// invalidate drops the line (if present) and acks the home. An ack is sent
// even when the line is absent: silent clean evictions leave stale sharer
// bits at the directory.
//
//glvet:cyclepath
func (l *L1) invalidate(m *msg) {
	st := l.c.Peek(m.addr)
	if l.p.traceOn {
		//lint:allow allocfree trace emission is opt-in debugging
		l.p.tracer.Emit(l.p.eng.Now(), l.src, "inv %#x (was %v, xfer %d)", m.addr, st, m.xfer)
	}
	if m.xfer >= 0 && st.Writable() {
		// 3-hop ownership transfer: hand the line straight to the new
		// owner, confirm the transfer to the home with a control flit.
		l.c.SetState(m.addr, cache.StateInvalid)
		d := l.p.newMsg(msgData, m.addr, l.tile)
		d.grant = grantM
		l.p.send(l.tile, m.xfer, d, l.p.dataFlits())
		a := l.p.newMsg(msgInvAck, m.addr, l.tile)
		a.xferred = true
		l.p.send(l.tile, m.from, a, controlFlits)
		l.fireWatch(m.addr)
		return
	}
	flits := controlFlits
	ack := l.p.newMsg(msgInvAck, m.addr, l.tile)
	if st == cache.StateModified {
		ack.withData = true
		flits = l.p.dataFlits()
	}
	if st != cache.StateInvalid {
		l.c.SetState(m.addr, cache.StateInvalid)
	}
	l.p.send(l.tile, m.from, ack, flits)
	l.fireWatch(m.addr)
}

// StoreConditional completes a LoadLinked: if this L1 still owns the line
// (nobody stole it since the LL), the store commits locally and scWin is
// true. It costs one L1 access either way and never touches the network —
// the ownership acquired by LoadLinked is the reservation.
func (l *L1) StoreConditional(addr, value uint64) (scWin bool) {
	line := l.p.LineAddr(addr)
	if !l.c.Peek(line).Writable() {
		l.p.cSCFail.Inc()
		return false
	}
	l.c.Lookup(addr)
	l.c.SetState(line, cache.StateModified)
	l.p.memv.StoreWord(addr, value)
	return true
}

// Watch arms a one-shot callback fired when addr's line is invalidated.
// At most one watch per L1 (the single local core). The spinning core's
// next load after the invalidation misses and refetches, exactly as if it
// had been re-loading every cycle.
func (l *L1) Watch(addr uint64, fn func()) {
	if l.watchFn != nil {
		panic(fmt.Sprintf("coherence: L1 %d already watching %#x", l.tile, l.watchLine))
	}
	l.watchLine = l.p.LineAddr(addr)
	l.watchFn = fn
}

//glvet:cyclepath
func (l *L1) fireWatch(line uint64) {
	if l.watchFn != nil && l.watchLine == line {
		fn := l.watchFn
		l.watchFn = nil
		// A faulty wakeup is delayed (or dropped and recovered by the
		// spinning core's periodic re-check, which the injector models as a
		// longer delay); liveness is preserved either way, exactly as a
		// real spin loop re-polling the line would behave.
		if d := l.p.inj.WatchPerturb(l.p.eng.Now(), l.tile); d > 0 {
			l.p.eng.After(d, fn)
			return
		}
		fn()
	}
}

// forward downgrades an owned line to Shared and returns the data to the
// home. Absent lines (silent drop or racing writeback) are acked without
// data.
//
//glvet:cyclepath
func (l *L1) forward(m *msg) {
	st := l.c.Peek(m.addr)
	flits := controlFlits
	ack := l.p.newMsg(msgFwdAck, m.addr, l.tile)
	if st == cache.StateModified || st == cache.StateExclusive {
		l.c.SetState(m.addr, cache.StateShared)
		ack.withData = true
		flits = l.p.dataFlits()
	}
	l.p.send(l.tile, m.from, ack, flits)
}

// HasLine reports the L1 state of addr's line, for tests.
func (l *L1) HasLine(addr uint64) cache.State { return l.c.Peek(l.p.LineAddr(addr)) }
