package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/mem"
)

func newThreeHopHarness(t *testing.T, cores int) *cohHarness {
	t.Helper()
	eng := engine.New()
	cfg := config.Default(cores)
	cfg.ThreeHopOwnership = true
	return &cohHarness{t: t, eng: eng, prot: New(eng, cfg, mem.NewStore())}
}

func TestThreeHopOwnershipTransfer(t *testing.T) {
	h := newThreeHopHarness(t, 4)
	addr := h.addrFor(1)
	h.access(0, Write, addr, 0, 5, true) // tile 0 owns M
	h.settle()
	h.access(2, Write, addr, 0, 9, true) // transfer 0 -> 2
	h.settle()
	if st := h.prot.L1(0).HasLine(addr); st != cache.StateInvalid {
		t.Errorf("old owner state %v", st)
	}
	if st := h.prot.L1(2).HasLine(addr); st != cache.StateModified {
		t.Errorf("new owner state %v", st)
	}
	state, owner, _ := h.prot.Bank(1).DirState(addr)
	if state != "O" || owner != 2 {
		t.Errorf("dir %s/%d, want O/2", state, owner)
	}
	if v := h.prot.Memory().Load(addr); v != 9 {
		t.Errorf("value %d", v)
	}
	if err := h.prot.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestThreeHopFasterThanFourHop(t *testing.T) {
	// Ping-pong a line between two far-apart tiles and compare protocols.
	run := func(threeHop bool) uint64 {
		eng := engine.New()
		cfg := config.Default(16)
		cfg.ThreeHopOwnership = threeHop
		prot := New(eng, cfg, mem.NewStore())
		addr := uint64(0x100040) // home somewhere in the middle
		left := 40
		var ping func(tile int)
		ping = func(tile int) {
			if left == 0 {
				return
			}
			left--
			next := 15 - tile
			prot.L1(tile).Access(Write, addr, 0, uint64(left), true, func(uint64) { ping(next) })
		}
		ping(0)
		for i := 0; i < 10_000_000 && left > 0; i++ {
			eng.Step()
		}
		return eng.Now()
	}
	three := run(true)
	four := run(false)
	if three >= four {
		t.Errorf("3-hop (%d cycles) not faster than 4-hop (%d)", three, four)
	}
	t.Logf("40 ownership ping-pongs: 3-hop=%d cycles, 4-hop=%d cycles", three, four)
}

func TestThreeHopFallbackOnDroppedOwner(t *testing.T) {
	h := newThreeHopHarness(t, 4)
	cfg := h.prot.cfg
	addr := h.addrFor(1)
	h.access(0, Read, addr, 0, 0, false) // E owner
	h.settle()
	// Evict silently.
	setSpan := uint64(cfg.L1Size / cfg.L1Ways)
	for i := 1; i <= cfg.L1Ways; i++ {
		h.access(0, Read, addr+uint64(i)*setSpan, 0, 0, false)
		h.settle()
	}
	// Write from another tile: the transfer request finds no owner; the
	// home must recover.
	h.access(2, Write, addr, 0, 3, true)
	h.settle()
	if st := h.prot.L1(2).HasLine(addr); st != cache.StateModified {
		t.Errorf("state %v after fallback", st)
	}
	if err := h.prot.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestThreeHopStress(t *testing.T) {
	eng := engine.New()
	cfg := config.Default(16)
	cfg.ThreeHopOwnership = true
	prot := New(eng, cfg, mem.NewStore())
	h := &cohHarness{t: t, eng: eng, prot: prot}
	_ = h
	// Reuse the random stress driver at a smaller scale.
	runStressOn(t, prot, eng, 3, 16, 800)
}
