package coherence

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/trace"
)

// localHopLatency is the cycles charged for an intra-tile message (an L1
// talking to the L2 bank on its own tile), which never enters the mesh.
const localHopLatency = 1

// Protocol is the whole coherent memory system: one L1 per tile, one L2
// home bank per tile, the mesh connecting them, and the functional store.
type Protocol struct {
	eng    *engine.Engine
	cfg    config.Config
	mesh   *noc.Mesh
	memv   *mem.Store
	l1s    []*L1
	banks  []*Bank
	tracer trace.Tracer
	// traceOn caches trace.Enabled(tracer) so hot paths skip the Emit call
	// (and its variadic boxing) with a single field load.
	traceOn bool
	// tl, when set, records coherence transactions (miss and atomic
	// round-trips) as spans on the requesting tile's track.
	tl *trace.Timeline

	// inj, when set, injects faults into the memory system: mesh link
	// faults and perturbed L1 spin-watch wakeups. Nil in fault-free runs.
	inj *fault.Injector

	// msgFree recycles protocol messages: every msg is freed by its final
	// consumer (L1 receive, bank ack/putM/unblock, bank process) and
	// reused by the next construction, so steady state allocates none.
	msgFree *msg

	lineMask uint64

	// memFetches and memWritebacks count off-chip accesses.
	memFetches, memWritebacks uint64

	reg *metrics.Registry
	// Protocol-event counters, shared by every bank and L1.
	cDirTrans  *metrics.Counter // directory state transitions
	cInvSent   *metrics.Counter // invalidations sent to L1s
	cFwdSent   *metrics.Counter // owner forwards (downgrades) sent
	cAckStale  *metrics.Counter // stale acks dropped (silent-evict races)
	cReqQueued *metrics.Counter // requests NACK-queued behind a busy line
	cSCFail    *metrics.Counter // failed store-conditionals (lock retries)
}

// Metric names registered by the protocol.
const (
	metricDirTransitions = "coh.dir.transitions"
	metricInvSent        = "coh.inv.sent"
	metricFwdSent        = "coh.fwd.sent"
	metricAckStale       = "coh.ack.stale"
	metricReqQueued      = "coh.req.queued"
	metricSCFailures     = "coh.sc.failures"
)

// New builds the coherent memory system for the given configuration.
func New(eng *engine.Engine, cfg config.Config, memv *mem.Store) *Protocol {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("coherence: %v", err))
	}
	p := &Protocol{
		eng:      eng,
		cfg:      cfg,
		memv:     memv,
		tracer:   trace.Nop{},
		lineMask: ^uint64(cfg.LineSize - 1),
		reg:      metrics.NewRegistry(),
	}
	p.cDirTrans = p.reg.Counter(metricDirTransitions)
	p.cInvSent = p.reg.Counter(metricInvSent)
	p.cFwdSent = p.reg.Counter(metricFwdSent)
	p.cAckStale = p.reg.Counter(metricAckStale)
	p.cReqQueued = p.reg.Counter(metricReqQueued)
	p.cSCFail = p.reg.Counter(metricSCFailures)
	p.mesh = noc.New(eng, cfg.MeshCols, cfg.MeshRows, cfg.RouterLatency, cfg.LinkLatency, p.sink)
	p.l1s = make([]*L1, cfg.Cores)
	p.banks = make([]*Bank, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		p.l1s[i] = newL1(p, i)
		p.banks[i] = newBank(p, i)
	}
	return p
}

// SetInjector installs a fault injector across the memory system: the mesh
// gets link-level faults, the L1s get perturbed spin-watch wakeups.
func (p *Protocol) SetInjector(inj *fault.Injector) {
	p.inj = inj
	p.mesh.SetInjector(inj)
}

// SetTracer installs an event tracer (trace.Nop by default).
func (p *Protocol) SetTracer(t trace.Tracer) {
	if t == nil {
		t = trace.Nop{}
	}
	p.tracer = t
	p.traceOn = trace.Enabled(t)
}

// SetTimeline attaches a span timeline to the memory system: the protocol
// records miss/atomic round-trips, the mesh per-port occupancy.
func (p *Protocol) SetTimeline(tl *trace.Timeline) {
	p.tl = tl
	p.mesh.SetTimeline(tl)
}

// Metrics returns the protocol's metric registry (directory transitions,
// invalidations, forwards, queued requests, stale acks, SC failures).
func (p *Protocol) Metrics() *metrics.Registry { return p.reg }

// Mesh exposes the data network for traffic accounting.
func (p *Protocol) Mesh() *noc.Mesh { return p.mesh }

// Memory exposes the functional store.
func (p *Protocol) Memory() *mem.Store { return p.memv }

// L1 returns tile's L1 controller (the port cores issue accesses through).
func (p *Protocol) L1(tile int) *L1 { return p.l1s[tile] }

// Bank returns tile's home bank, for white-box tests.
func (p *Protocol) Bank(tile int) *Bank { return p.banks[tile] }

// MemAccesses returns the off-chip fetch and writeback counts.
func (p *Protocol) MemAccesses() (fetches, writebacks uint64) {
	return p.memFetches, p.memWritebacks
}

// LineAddr returns the line-aligned address containing addr.
func (p *Protocol) LineAddr(addr uint64) uint64 { return addr & p.lineMask }

// HomeOf returns the tile whose L2 bank is the home of addr: lines are
// interleaved across tiles at line granularity.
func (p *Protocol) HomeOf(addr uint64) int {
	return int((addr >> uint(lineShift(p.cfg.LineSize))) % uint64(p.cfg.Cores))
}

func lineShift(lineSize int) int {
	s := 0
	for 1<<s != lineSize {
		s++
	}
	return s
}

// newMsg returns a recycled message initialized to (t, addr, from) with
// every other field zeroed and xfer at the -1 "plain invalidation"
// sentinel. The composite-literal fallback only runs while the pool warms
// up.
//
//glvet:cyclepath
func (p *Protocol) newMsg(t msgType, addr uint64, from int) *msg {
	m := p.msgFree
	if m == nil {
		//lint:allow allocfree pool warm-up; steady state reuses freed messages
		m = &msg{}
	} else {
		p.msgFree = m.next
		*m = msg{}
	}
	m.t, m.addr, m.from = t, addr, from
	m.xfer = -1
	return m
}

// freeMsg returns a fully-consumed message to the pool. The caller must
// not retain m: the next newMsg hands it out again.
//
//glvet:cyclepath
func (p *Protocol) freeMsg(m *msg) {
	*m = msg{}
	m.next = p.msgFree
	p.msgFree = m
}

// dispatchCB delivers an intra-tile message after the local hop: recv is
// the protocol, obj the message, a the destination tile.
func dispatchCB(recv, obj any, a, _ uint64) { recv.(*Protocol).dispatch(int(a), obj.(*msg)) }

// send routes a protocol message from tile src to tile dst. Intra-tile
// messages bypass the mesh (they cost localHopLatency and no traffic);
// everything else is injected as a NoC packet.
//
//glvet:cyclepath
func (p *Protocol) send(src, dst int, m *msg, flits int) {
	if src == dst {
		p.eng.CallAfter(localHopLatency, dispatchCB, p, m, uint64(dst), 0)
		return
	}
	p.mesh.Send(src, dst, m.t.class(), flits, m)
}

// sink receives packets delivered by the mesh.
func (p *Protocol) sink(dst int, pkt *noc.Packet) {
	m, ok := pkt.Payload.(*msg)
	if !ok {
		panic(fmt.Sprintf("coherence: foreign payload %T delivered to tile %d", pkt.Payload, dst))
	}
	p.dispatch(dst, m)
}

func (p *Protocol) dispatch(dst int, m *msg) {
	if m.t.toHome() {
		p.banks[dst].receive(m)
	} else {
		p.l1s[dst].receive(m)
	}
}

// controlFlits is the size of a permission/ack/request message.
const controlFlits = 1

// atomicReqFlits carries the request header plus the operand word.
const atomicReqFlits = 2

// atomicAckFlits carries the header plus the old value.
const atomicAckFlits = 2

// dataFlits is the size of a message carrying a full cache line.
func (p *Protocol) dataFlits() int { return p.cfg.DataFlits() }

// Stats helpers ------------------------------------------------------------

// Traffic returns the mesh's per-class counters.
func (p *Protocol) Traffic() stats.Traffic { return p.mesh.Traffic() }

// L1Stats returns the hit/miss counters of a tile's L1.
func (p *Protocol) L1Stats(tile int) (hits, misses uint64) {
	c := p.l1s[tile].c
	return c.Hits(), c.Misses()
}

// L2Stats returns the aggregate L2 hit/miss counters.
func (p *Protocol) L2Stats() (hits, misses uint64) {
	for _, b := range p.banks {
		hits += b.l2.Hits()
		misses += b.l2.Misses()
	}
	return hits, misses
}
