package coherence

import (
	"testing"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/mem"
)

// sinkDone is a package-level completion callback: passing an existing func
// value through Access is pointer-shaped and never boxes, so the gates
// below measure the protocol, not the test harness.
var sinkDone = func(uint64) {}

// TestZeroAllocMessageDelivery is the coherence alloc regression gate: with
// the message pool, directory entries, and caches warm, remote atomic
// round-trips and a write-invalidate ping-pong must not allocate (ISSUE:
// zero steady-state allocation in message construction and delivery).
func TestZeroAllocMessageDelivery(t *testing.T) {
	eng := engine.New()
	cfg := config.Default(4)
	p := New(eng, cfg, mem.NewStore())

	// A line homed at tile 1, accessed from tiles 0 and 2: every message
	// crosses the mesh.
	var addr uint64
	for a := uint64(0x100000); ; a += uint64(cfg.LineSize) {
		if p.HomeOf(a) == 1 {
			addr = a
			break
		}
	}
	settle := func() {
		for i := 0; i < 100_000 && !p.Quiescent(); i++ {
			eng.Step()
		}
		for i := 0; i < 8; i++ {
			eng.Step()
		}
	}
	round := func() {
		// Remote fetch&add: request + RMW at home + ack, all pooled.
		p.L1(0).Access(AtomicAdd, addr, 1, 0, false, sinkDone)
		settle()
		// Write ping-pong: GetX, invalidation, ack, grant — the 2-hop
		// and upgrade directory paths.
		p.L1(0).Access(Write, addr, 0, 7, true, sinkDone)
		settle()
		p.L1(2).Access(Write, addr, 0, 9, true, sinkDone)
		settle()
	}
	// Warm up: allocate the directory entry, fill both L1s and the L2,
	// and populate the message pool with this pattern's peak population.
	for i := 0; i < 4; i++ {
		round()
	}
	if !p.Quiescent() {
		t.Fatal("warm-up traffic did not drain")
	}

	allocs := testing.AllocsPerRun(50, round)
	if allocs != 0 {
		t.Fatalf("coherence round-trip allocates %.1f objects/op, want 0", allocs)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("protocol invariants violated after gate: %v", err)
	}
}
