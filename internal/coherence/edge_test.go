package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/stats"
)

// TestFwdToSilentlyDroppedOwner: the directory forwards a read to an owner
// that silently dropped its clean line; the home must recover by supplying
// the data itself.
func TestFwdToSilentlyDroppedOwner(t *testing.T) {
	h := newCohHarness(t, 4)
	cfg := h.prot.cfg
	addr := h.addrFor(1)
	// Tile 0 becomes E owner.
	h.access(0, Read, addr, 0, 0, false)
	h.settle()
	// Force tile 0 to silently evict addr's line by filling its set with
	// other clean lines.
	setSpan := uint64(cfg.L1Size / cfg.L1Ways)
	for i := 1; i <= cfg.L1Ways; i++ {
		h.access(0, Read, addr+uint64(i)*setSpan, 0, 0, false)
		h.settle()
	}
	if st := h.prot.L1(0).HasLine(addr); st != cache.StateInvalid {
		t.Fatalf("line not evicted: %v", st)
	}
	// Directory still believes tile 0 owns it; a read from tile 2 must
	// nevertheless complete with correct data.
	h.prot.Memory().StoreWord(addr, 0) // value semantics: untouched bulk line
	v, _ := h.access(2, Read, addr, 0, 0, false)
	if v != 0 {
		t.Errorf("read returned %d", v)
	}
	h.settle()
	if st := h.prot.L1(2).HasLine(addr); st == cache.StateInvalid {
		t.Error("requester did not receive the line")
	}
	if err := h.prot.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestOwnerRefetchAfterSilentDrop: the owner itself re-reads a line the
// directory still attributes to it.
func TestOwnerRefetchAfterSilentDrop(t *testing.T) {
	h := newCohHarness(t, 4)
	cfg := h.prot.cfg
	addr := h.addrFor(1)
	h.access(0, Read, addr, 0, 0, false) // E at tile 0
	h.settle()
	setSpan := uint64(cfg.L1Size / cfg.L1Ways)
	for i := 1; i <= cfg.L1Ways; i++ {
		h.access(0, Read, addr+uint64(i)*setSpan, 0, 0, false)
		h.settle()
	}
	// Re-read: directory sees owner==requester.
	h.access(0, Read, addr, 0, 0, false)
	h.settle()
	if st := h.prot.L1(0).HasLine(addr); !st.Writable() {
		t.Errorf("re-granted state %v, want E/M", st)
	}
	if err := h.prot.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestOwnerWriteAfterSilentDrop: same race for a write.
func TestOwnerWriteAfterSilentDrop(t *testing.T) {
	h := newCohHarness(t, 4)
	cfg := h.prot.cfg
	addr := h.addrFor(1)
	h.access(0, Read, addr, 0, 0, false)
	h.settle()
	setSpan := uint64(cfg.L1Size / cfg.L1Ways)
	for i := 1; i <= cfg.L1Ways; i++ {
		h.access(0, Read, addr+uint64(i)*setSpan, 0, 0, false)
		h.settle()
	}
	h.access(0, Write, addr, 0, 77, true)
	h.settle()
	if v := h.prot.Memory().Load(addr); v != 77 {
		t.Errorf("value %d, want 77", v)
	}
	if err := h.prot.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestUpgradeRaceLosesToWriter: two sharers upgrade simultaneously; the
// blocking directory serializes them — the second upgrade arrives after it
// lost its copy and must be treated as a full miss.
func TestUpgradeRaceLosesToWriter(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(3)
	h.access(0, Read, addr, 0, 0, false)
	h.settle()
	h.access(1, Read, addr, 0, 0, false)
	h.settle()
	done := 0
	h.prot.L1(0).Access(Write, addr, 0, 10, true, func(uint64) { done++ })
	h.prot.L1(1).Access(Write, addr, 0, 20, true, func(uint64) { done++ })
	for i := 0; i < 100_000 && done < 2; i++ {
		h.eng.Step()
	}
	if done != 2 {
		t.Fatalf("%d/2 writes completed", done)
	}
	h.settle()
	if err := h.prot.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// The later writer's value wins functionally.
	v := h.prot.Memory().Load(addr)
	if v != 10 && v != 20 {
		t.Errorf("final value %d", v)
	}
}

// TestUnblockCountsAsCoherence: the grant-ack message travels on the
// coherence class, as protocol overhead should.
func TestUnblockCountsAsCoherence(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(2)
	h.access(0, Read, addr, 0, 0, false)
	h.settle()
	tr := h.prot.Traffic()
	if tr.Messages[stats.ClassCoherence] == 0 {
		t.Error("no coherence traffic recorded for the unblock")
	}
}

// TestQuiescentDetection: mid-transaction the system is not quiescent.
func TestQuiescentDetection(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(2)
	fired := false
	h.prot.L1(0).Access(Read, addr, 0, 0, false, func(uint64) { fired = true })
	if h.prot.Quiescent() {
		t.Error("system quiescent with a pending L1 access")
	}
	for i := 0; i < 100_000 && !fired; i++ {
		h.eng.Step()
	}
	h.settle()
	if !h.prot.Quiescent() {
		t.Error("system not quiescent after settle")
	}
}

// TestAtomicOnOwnedLine: an atomic to a line held M by another core pulls
// the dirty data home first.
func TestAtomicOnOwnedLine(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(1)
	h.access(0, Write, addr, 0, 5, true) // tile 0 holds M, value 5
	h.settle()
	old, _ := h.access(2, AtomicAdd, addr, 1, 0, false)
	if old != 5 {
		t.Errorf("atomic saw %d, want 5", old)
	}
	if v := h.prot.Memory().Load(addr); v != 6 {
		t.Errorf("value %d, want 6", v)
	}
	h.settle()
	if st := h.prot.L1(0).HasLine(addr); st != cache.StateInvalid {
		t.Errorf("old owner still holds %v", st)
	}
}

// TestSwapSemantics: AtomicSwap returns old and installs new.
func TestSwapSemantics(t *testing.T) {
	h := newCohHarness(t, 4)
	addr := h.addrFor(2)
	h.prot.Memory().StoreWord(addr, 11)
	old, _ := h.access(0, AtomicSwap, addr, 22, 0, false)
	if old != 11 || h.prot.Memory().Load(addr) != 22 {
		t.Errorf("swap old=%d new=%d", old, h.prot.Memory().Load(addr))
	}
}
