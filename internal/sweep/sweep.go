// Package sweep fans independent simulation runs across a bounded worker
// pool. Every experiment of the paper's evaluation is a grid of pure
// (workload × barrier kind × core count × config) cells: each cell builds
// its own sim.System, so cells share no state and can run on any number of
// goroutines without changing results.
//
// The contract callers rely on:
//
//   - Results come back in submission order, one per Spec, regardless of
//     which worker finished first: a parallel sweep renders byte-identical
//     tables to a sequential one.
//   - A failing cell (error or panic) never aborts the sweep; its Result
//     carries the error and every other cell still runs, unless FailFast
//     asks to cancel cells that have not started yet.
//   - Determinism is checkable: each cell's Report carries a fingerprint
//     (sim.Report.Fingerprint) hashed over its final statistics.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Spec is one independent cell of a sweep: a label for error reporting and
// a self-contained run building its own fresh system.
type Spec struct {
	Label string
	Run   func() (*sim.Report, error)
}

// Options configure how a sweep executes. The zero value runs one worker
// per available CPU and never cancels.
type Options struct {
	// Jobs is the worker-goroutine count; <= 0 means GOMAXPROCS.
	Jobs int
	// FailFast cancels cells that have not started once any cell fails.
	// Canceled cells report ErrCanceled.
	FailFast bool
	// ArtifactDir, when non-empty, writes each successful cell's report as
	// an indented-JSON file <dir>/<index>_<label>.json (the label sanitized
	// to filename-safe characters). The directory is created if missing; a
	// write failure is recorded on the cell's Err without stopping others.
	ArtifactDir string
	// Timeout bounds each cell's wall-clock run time; 0 means unbounded.
	// A cell past its deadline records ErrTimeout and its worker moves on;
	// the abandoned run keeps its goroutine until its own cycle budget or
	// watchdog ends it, but can no longer touch the sweep's results.
	Timeout time.Duration
	// Ctx, when non-nil, aborts the sweep: cells that have not started when
	// the context is canceled record ErrAborted, and a cell in flight is
	// abandoned (like a timeout) so Run returns promptly. A nil Ctx — every
	// pre-existing call site — is context.Background() and executes
	// bit-identically to before the field existed.
	Ctx context.Context
}

// ctx resolves the effective context.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// jobs resolves the effective worker count.
func (o Options) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Result is one cell's outcome, at the same index as its Spec.
type Result struct {
	Label  string
	Report *sim.Report
	Err    error
}

// Fingerprint returns the cell's determinism fingerprint, or "" for a
// failed cell.
func (r Result) Fingerprint() string {
	if r.Report == nil {
		return ""
	}
	return r.Report.Fingerprint()
}

// ErrCanceled marks cells skipped under FailFast after an earlier failure.
var ErrCanceled = errors.New("sweep: canceled after earlier failure")

// ErrTimeout marks cells abandoned after exceeding Options.Timeout.
var ErrTimeout = errors.New("sweep: cell exceeded timeout")

// ErrAborted marks cells skipped or abandoned because Options.Ctx was
// canceled (a job abort or server drain).
var ErrAborted = errors.New("sweep: aborted by context")

// Run executes every spec on opts.jobs() workers and returns one Result
// per spec, in submission order. It never returns early: with FailFast
// off, every cell runs to completion; with FailFast on, cells that have
// not yet started when a failure lands are marked ErrCanceled. A panic
// inside a cell is recovered into that cell's Err.
func Run(opts Options, specs []Spec) []Result {
	results := make([]Result, len(specs))
	if opts.ArtifactDir != "" {
		if err := os.MkdirAll(opts.ArtifactDir, 0o755); err != nil {
			for i := range results {
				results[i].Label = specs[i].Label
				results[i].Err = fmt.Errorf("sweep: artifact dir: %w", err)
			}
			return results
		}
	}
	ctx := opts.ctx()
	var failed atomic.Bool
	runOne := func(i int) {
		r := &results[i]
		r.Label = specs[i].Label
		if err := ctx.Err(); err != nil {
			r.Err = fmt.Errorf("%w: %v", ErrAborted, err)
			return
		}
		if opts.FailFast && failed.Load() {
			r.Err = ErrCanceled
			return
		}
		r.Report, r.Err = runCell(ctx, specs[i].Run, opts.Timeout)
		if r.Err == nil && opts.ArtifactDir != "" && r.Report != nil {
			r.Err = writeArtifact(opts.ArtifactDir, i, r.Label, r.Report)
		}
		if r.Err != nil {
			if r.Label != "" {
				r.Err = fmt.Errorf("%s: %w", r.Label, r.Err)
			}
			failed.Store(true)
		}
	}

	n := opts.jobs()
	if n > len(specs) {
		n = len(specs)
	}
	if n <= 1 {
		// Strictly sequential, in submission order: the reference
		// execution that parallel runs must match bit-for-bit.
		for i := range specs {
			runOne(i)
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i)
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// writeArtifact serializes one cell's report to <dir>/<index>_<label>.json.
// Workers call it concurrently, which is safe: every cell owns its own file.
func writeArtifact(dir string, index int, label string, rep *sim.Report) error {
	raw, err := rep.JSON()
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	name := fmt.Sprintf("%03d_%s.json", index, sanitizeLabel(label))
	if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	return nil
}

// sanitizeLabel maps a human-facing cell label to a filename-safe slug.
// Sanitization is lossy — "a/b" and "a:b" both map to "a-b", and long
// labels truncate — so whenever information was dropped the slug carries
// an 8-hex-digit hash of the raw label: two distinct labels can never
// silently share an artifact filename, no matter which sweep (and hence
// which index) they run under.
func sanitizeLabel(label string) string {
	if label == "" {
		return "cell"
	}
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '.', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, label)
	const maxLen = 80
	lossy := mapped != label
	if len(mapped) > maxLen {
		mapped = mapped[:maxLen]
		lossy = true
	}
	if lossy {
		h := fnv.New32a()
		h.Write([]byte(label))
		mapped = fmt.Sprintf("%s-%08x", mapped, h.Sum32())
	}
	return mapped
}

// protect runs one cell, converting a panic into an error so a bad cell
// cannot take down the whole sweep.
func protect(run func() (*sim.Report, error)) (rep *sim.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("run panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return run()
}

// runCell executes one cell under the optional wall-clock deadline and
// cancellation context. With neither (nil-Done context, zero timeout) the
// cell runs directly on the worker goroutine — the pre-context code path,
// bit-identical for existing call sites. Otherwise the cell runs on its
// own goroutine delivering through a buffered channel, so a timed-out or
// aborted run can finish (or crash) later without racing the worker.
func runCell(ctx context.Context, run func() (*sim.Report, error), timeout time.Duration) (*sim.Report, error) {
	if timeout <= 0 && ctx.Done() == nil {
		return protect(run)
	}
	type outcome struct {
		rep *sim.Report
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		rep, err := protect(run)
		ch <- outcome{rep, err}
	}()
	var deadline <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		deadline = timer.C
	}
	select {
	case o := <-ch:
		return o.rep, o.err
	case <-deadline:
		return nil, fmt.Errorf("%w (%v)", ErrTimeout, timeout)
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %v", ErrAborted, context.Cause(ctx))
	}
}

// Errs joins the errors of all failed cells (nil when every cell
// succeeded), preserving submission order — the aggregate an experiment
// returns alongside its fully rendered table.
func Errs(results []Result) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return errors.Join(errs...)
}

// Failed counts cells that did not produce a report.
func Failed(results []Result) int {
	n := 0
	for _, r := range results {
		if r.Err != nil {
			n++
		}
	}
	return n
}
