package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// fakeReport builds a distinct deterministic report for cell i.
func fakeReport(i int) *sim.Report {
	r := &sim.Report{Cycles: uint64(1000 + i), BarrierEpisodes: uint64(i)}
	r.Breakdown.Add(stats.RegionBusy, uint64(10*i))
	r.Traffic.Add(stats.ClassRequest, i)
	return r
}

// grid builds n well-behaved cells.
func grid(n int) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		i := i
		specs[i] = Spec{
			Label: fmt.Sprintf("cell%d", i),
			Run:   func() (*sim.Report, error) { return fakeReport(i), nil },
		}
	}
	return specs
}

// TestParallelMatchesSequential runs the same grid with jobs=1 and jobs=8
// and requires bit-for-bit identical results in submission order.
func TestParallelMatchesSequential(t *testing.T) {
	specs := grid(37)
	seq := Run(Options{Jobs: 1}, specs)
	par := Run(Options{Jobs: 8}, specs)
	if len(seq) != len(specs) || len(par) != len(specs) {
		t.Fatalf("result lengths %d/%d, want %d", len(seq), len(par), len(specs))
	}
	for i := range specs {
		if seq[i].Label != specs[i].Label || par[i].Label != specs[i].Label {
			t.Errorf("cell %d: labels out of order (%q / %q)", i, seq[i].Label, par[i].Label)
		}
		if seq[i].Err != nil || par[i].Err != nil {
			t.Errorf("cell %d: unexpected errors %v / %v", i, seq[i].Err, par[i].Err)
		}
		sf, pf := seq[i].Fingerprint(), par[i].Fingerprint()
		if sf == "" || sf != pf {
			t.Errorf("cell %d: fingerprints diverge: seq=%s par=%s", i, sf, pf)
		}
		if seq[i].Report.Cycles != par[i].Report.Cycles {
			t.Errorf("cell %d: cycles diverge", i)
		}
	}
}

// TestPanickingCellIsIsolated requires a panicking run to be recovered and
// reported as that cell's error while every other cell completes.
func TestPanickingCellIsIsolated(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		specs := grid(9)
		specs[4] = Spec{Label: "boom", Run: func() (*sim.Report, error) { panic("kaboom") }}
		results := Run(Options{Jobs: jobs}, specs)
		for i, r := range results {
			if i == 4 {
				if r.Err == nil || !strings.Contains(r.Err.Error(), "kaboom") {
					t.Errorf("jobs=%d: panic not reported: %v", jobs, r.Err)
				}
				if !strings.Contains(r.Err.Error(), "boom:") {
					t.Errorf("jobs=%d: error not labeled: %v", jobs, r.Err)
				}
				continue
			}
			if r.Err != nil || r.Report == nil {
				t.Errorf("jobs=%d: healthy cell %d affected: %v", jobs, i, r.Err)
			}
		}
		if got := Failed(results); got != 1 {
			t.Errorf("jobs=%d: Failed() = %d, want 1", jobs, got)
		}
		if err := Errs(results); err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Errorf("jobs=%d: Errs() = %v", jobs, err)
		}
	}
}

// TestFailFastSequential pins the deterministic jobs=1 semantics: after
// the first failure every remaining cell is canceled.
func TestFailFastSequential(t *testing.T) {
	specs := grid(6)
	sentinel := errors.New("cell died")
	specs[2] = Spec{Label: "bad", Run: func() (*sim.Report, error) { return nil, sentinel }}
	results := Run(Options{Jobs: 1, FailFast: true}, specs)
	for i, r := range results {
		switch {
		case i < 2:
			if r.Err != nil {
				t.Errorf("cell %d ran before the failure but errored: %v", i, r.Err)
			}
		case i == 2:
			if !errors.Is(r.Err, sentinel) {
				t.Errorf("failing cell error = %v, want sentinel", r.Err)
			}
		default:
			if !errors.Is(r.Err, ErrCanceled) {
				t.Errorf("cell %d after failure: err = %v, want ErrCanceled", i, r.Err)
			}
		}
	}
}

// TestFailFastParallel exercises cancellation across workers: the first
// cell fails and closes a gate the second cell waits on, so by the time
// any later cell is pulled the failure has landed and it must be canceled.
func TestFailFastParallel(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	sentinel := errors.New("first cell died")
	specs := []Spec{
		{Label: "fail", Run: func() (*sim.Report, error) {
			<-started // don't fail until the second cell is in flight
			defer close(gate)
			return nil, sentinel
		}},
		{Label: "inflight", Run: func() (*sim.Report, error) {
			close(started)
			<-gate // started before the failure: must still finish
			return fakeReport(1), nil
		}},
	}
	for i := 2; i < 10; i++ {
		i := i
		specs = append(specs, Spec{
			Label: fmt.Sprintf("later%d", i),
			Run:   func() (*sim.Report, error) { <-gate; return fakeReport(i), nil },
		})
	}
	results := Run(Options{Jobs: 2, FailFast: true}, specs)
	if !errors.Is(results[0].Err, sentinel) {
		t.Errorf("cell 0: %v, want sentinel", results[0].Err)
	}
	if results[1].Err != nil || results[1].Report == nil {
		t.Errorf("in-flight cell was not allowed to finish: %v", results[1].Err)
	}
	// Workers pull cells in order; every cell after the in-flight one was
	// picked up after the failure landed and must be canceled.
	for i := 2; i < len(results); i++ {
		if !errors.Is(results[i].Err, ErrCanceled) {
			t.Errorf("cell %d: err = %v, want ErrCanceled", i, results[i].Err)
		}
	}
}

// TestWithoutFailFastEverythingRuns is the default contract: one failed
// cell must not abort the sweep.
func TestWithoutFailFastEverythingRuns(t *testing.T) {
	specs := grid(8)
	specs[0] = Spec{Label: "bad", Run: func() (*sim.Report, error) { return nil, errors.New("nope") }}
	results := Run(Options{Jobs: 4}, specs)
	for i := 1; i < len(results); i++ {
		if results[i].Err != nil || results[i].Report == nil {
			t.Errorf("cell %d did not run to completion: %v", i, results[i].Err)
		}
	}
}

// TestZeroSpecs and tiny pools must not hang or panic.
func TestEdgeShapes(t *testing.T) {
	if got := Run(Options{}, nil); len(got) != 0 {
		t.Errorf("empty sweep returned %d results", len(got))
	}
	one := Run(Options{Jobs: 16}, grid(1)) // more workers than cells
	if len(one) != 1 || one[0].Err != nil {
		t.Errorf("single-cell sweep: %+v", one)
	}
	if err := Errs(one); err != nil {
		t.Errorf("Errs on clean sweep: %v", err)
	}
}

func TestArtifactDirWritesPerCellJSON(t *testing.T) {
	dir := t.TempDir()
	specs := grid(3)
	specs = append(specs, Spec{
		Label: "weird / label:v2",
		Run:   func() (*sim.Report, error) { return fakeReport(99), nil },
	})
	res := Run(Options{Jobs: 2, ArtifactDir: dir}, specs)
	if err := Errs(res); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(specs) {
		t.Fatalf("%d artifacts, want %d", len(entries), len(specs))
	}
	// Index prefix keeps submission order; labels are filename-safe.
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	sort.Strings(names)
	if names[0] != "000_cell0.json" {
		t.Errorf("first artifact %q, want 000_cell0.json", names[0])
	}
	if names[3] != "003_weird---label-v2-3497ca91.json" {
		t.Errorf("sanitized artifact %q", names[3])
	}
	// Each artifact is parseable JSON whose fingerprint matches its cell.
	for i, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("%s: bad JSON: %v", name, err)
		}
		if fp, _ := doc["fingerprint"].(string); fp != res[i].Fingerprint() {
			t.Errorf("%s: fingerprint %q, want %q", name, fp, res[i].Fingerprint())
		}
	}
}

func TestArtifactDirCreationFailure(t *testing.T) {
	// A file where the artifact dir should be makes MkdirAll fail; every
	// cell must report the error instead of silently dropping artifacts.
	blocker := filepath.Join(t.TempDir(), "flat")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	res := Run(Options{ArtifactDir: blocker}, grid(2))
	for i, r := range res {
		if r.Err == nil {
			t.Errorf("cell %d: no error despite unusable artifact dir", i)
		}
	}
}

func TestSanitizeLabel(t *testing.T) {
	// Lossless labels pass through unchanged; lossy sanitization (mapped
	// characters or truncation) appends an 8-hex hash of the raw label.
	cases := map[string]string{
		"":                       "cell",
		"gl 16c":                 "gl-16c-70802cd2",
		"a/b\\c:d":               "a-b-c-d-f9ee7492",
		"ok-name_1.2":            "ok-name_1.2",
		strings.Repeat("x", 200): strings.Repeat("x", 80) + "-b3e4b6e5",
	}
	for in, want := range cases {
		if got := sanitizeLabel(in); got != want {
			t.Errorf("sanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSanitizeLabelCollisions pins the satellite fix: two distinct labels
// whose sanitized forms used to coincide must now produce distinct
// filenames, even at the same cell index (e.g. cell 0 of two different
// sweeps sharing an artifact directory).
func TestSanitizeLabelCollisions(t *testing.T) {
	pairs := [][2]string{
		{"a/b", "a:b"},
		{"SYNTH/GL/16", "SYNTH:GL:16"},
		{strings.Repeat("y", 81), strings.Repeat("y", 82)},
	}
	for _, p := range pairs {
		if a, b := sanitizeLabel(p[0]), sanitizeLabel(p[1]); a == b {
			t.Errorf("labels %q and %q still collide on %q", p[0], p[1], a)
		}
	}
	// End to end: same index, different raw labels, one directory — the
	// second artifact must not overwrite the first.
	dir := t.TempDir()
	if err := writeArtifact(dir, 0, "a/b", fakeReport(1)); err != nil {
		t.Fatal(err)
	}
	if err := writeArtifact(dir, 0, "a:b", fakeReport(2)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d artifacts after two same-index writes, want 2", len(entries))
	}
}

// TestTimeoutAbandonsSlowCell checks that a cell past Options.Timeout
// records ErrTimeout while every other cell still runs and reports.
func TestTimeoutAbandonsSlowCell(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	specs := grid(4)
	specs = append(specs, Spec{
		Label: "stuck",
		Run: func() (*sim.Report, error) {
			<-release // held open until the test finishes
			return fakeReport(99), nil
		},
	})
	specs = append(specs, grid(3)...)
	results := Run(Options{Jobs: 2, Timeout: 50 * time.Millisecond}, specs)
	timedOut := 0
	for i, r := range results {
		if r.Label == "stuck" {
			if !errors.Is(r.Err, ErrTimeout) {
				t.Fatalf("stuck cell err = %v, want ErrTimeout", r.Err)
			}
			timedOut++
			continue
		}
		if r.Err != nil || r.Report == nil {
			t.Errorf("cell %d (%s): err=%v, want clean report", i, r.Label, r.Err)
		}
	}
	if timedOut != 1 {
		t.Fatalf("timed-out cells = %d, want 1", timedOut)
	}
	if Failed(results) != 1 {
		t.Fatalf("Failed = %d, want 1", Failed(results))
	}
}

// TestTimeoutFailFastCancelsRest checks a timeout counts as a failure for
// FailFast purposes: cells that have not started are canceled.
func TestTimeoutFailFastCancelsRest(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	specs := []Spec{
		{Label: "stuck", Run: func() (*sim.Report, error) { <-release; return nil, nil }},
	}
	specs = append(specs, grid(8)...)
	results := Run(Options{Jobs: 1, FailFast: true, Timeout: 50 * time.Millisecond}, specs)
	if !errors.Is(results[0].Err, ErrTimeout) {
		t.Fatalf("cell 0 err = %v, want ErrTimeout", results[0].Err)
	}
	canceled := 0
	for _, r := range results[1:] {
		if errors.Is(r.Err, ErrCanceled) {
			canceled++
		}
	}
	if canceled != len(specs)-1 {
		t.Fatalf("canceled = %d, want %d", canceled, len(specs)-1)
	}
}

// TestTimeoutDisabledByDefault pins the zero Options running cells on the
// worker goroutine itself (no deadline, no helper goroutine abandonment).
func TestTimeoutDisabledByDefault(t *testing.T) {
	results := Run(Options{Jobs: 1}, grid(3))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("cell %d: %v", i, r.Err)
		}
	}
}

// TestContextCancelBetweenCells checks an already-canceled context marks
// every cell ErrAborted without running any of them.
func TestContextCancelBetweenCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	specs := []Spec{{Label: "never", Run: func() (*sim.Report, error) {
		ran++
		return fakeReport(0), nil
	}}}
	specs = append(specs, grid(4)...)
	results := Run(Options{Jobs: 2, Ctx: ctx}, specs)
	if ran != 0 {
		t.Fatalf("canceled sweep still ran %d cells", ran)
	}
	for i, r := range results {
		if !errors.Is(r.Err, ErrAborted) {
			t.Errorf("cell %d: err = %v, want ErrAborted", i, r.Err)
		}
	}
}

// TestContextCancelMidCell checks a cancel landing while a cell is in
// flight abandons that cell promptly (ErrAborted) and skips the rest.
func TestContextCancelMidCell(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	defer close(release)
	entered := make(chan struct{})
	specs := []Spec{
		{Label: "stuck", Run: func() (*sim.Report, error) {
			close(entered)
			<-release // held open: only cancellation can unblock the sweep
			return fakeReport(0), nil
		}},
	}
	specs = append(specs, grid(3)...)
	go func() {
		<-entered
		cancel()
	}()
	results := Run(Options{Jobs: 1, Ctx: ctx}, specs)
	if !errors.Is(results[0].Err, ErrAborted) {
		t.Fatalf("in-flight cell err = %v, want ErrAborted", results[0].Err)
	}
	for i, r := range results[1:] {
		if !errors.Is(r.Err, ErrAborted) {
			t.Errorf("cell %d: err = %v, want ErrAborted", i+1, r.Err)
		}
	}
}

// TestNilContextIsBackground pins the compatibility contract: a zero
// Options (nil Ctx) runs cells directly on the worker goroutine exactly as
// before the field existed.
func TestNilContextIsBackground(t *testing.T) {
	results := Run(Options{}, grid(5))
	for i, r := range results {
		if r.Err != nil || r.Report == nil {
			t.Fatalf("cell %d: %v", i, r.Err)
		}
	}
}

// TestPanicUnderTimeoutIsCaptured checks the deadline path still converts a
// panic into the cell's error with the stack attached.
func TestPanicUnderTimeoutIsCaptured(t *testing.T) {
	specs := []Spec{{Label: "boom", Run: func() (*sim.Report, error) { panic("kaboom") }}}
	results := Run(Options{Timeout: time.Second}, specs)
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "kaboom") {
		t.Fatalf("panic not captured under timeout: %v", results[0].Err)
	}
	if !strings.Contains(results[0].Err.Error(), "goroutine") {
		t.Fatalf("panic error missing stack: %v", results[0].Err)
	}
}
