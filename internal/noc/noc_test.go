package noc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/stats"
)

type harness struct {
	eng       *engine.Engine
	mesh      *Mesh
	delivered map[uint64]uint64 // packet ID -> delivery cycle
	dests     map[uint64]int
}

func newHarness(t *testing.T, cols, rows int, routerLat, linkLat uint64) *harness {
	t.Helper()
	h := &harness{
		eng:       engine.New(),
		delivered: map[uint64]uint64{},
		dests:     map[uint64]int{},
	}
	h.mesh = New(h.eng, cols, rows, routerLat, linkLat, func(dst int, p *Packet) {
		if _, dup := h.delivered[p.ID]; dup {
			t.Errorf("packet %d delivered twice", p.ID)
		}
		h.delivered[p.ID] = h.eng.Now()
		h.dests[p.ID] = dst
	})
	return h
}

func (h *harness) drain(max int) {
	for i := 0; i < max && h.mesh.InFlight() > 0; i++ {
		h.eng.Step()
	}
	// A couple of extra steps for the final delivery events.
	for i := 0; i < 4; i++ {
		h.eng.Step()
	}
}

func TestSinglePacketLatency(t *testing.T) {
	// 4x4 mesh, router 1, link 1. Corner to corner: 6 hops.
	h := newHarness(t, 4, 4, 1, 1)
	p := &Packet{Src: 0, Dst: 15, Class: stats.ClassRequest, Flits: 1}
	h.mesh.Inject(p)
	h.drain(200)
	got, ok := h.delivered[p.ID]
	if !ok {
		t.Fatal("packet not delivered")
	}
	// Expected: per intermediate hop (router + 1 flit + link) plus final
	// ejection. 6 hops of (1+1+1) then route+eject (1+1) => 20 cycles.
	if got < 15 || got > 25 {
		t.Errorf("corner-to-corner 1-flit latency %d, want ~20", got)
	}
	if h.dests[p.ID] != 15 {
		t.Errorf("delivered to %d, want 15", h.dests[p.ID])
	}
}

func TestCutThroughBeatsStoreAndForward(t *testing.T) {
	// A 9-flit packet across 6 hops: cut-through pays the payload once
	// (~hops*3 + 9), store-and-forward would pay ~hops*(3+9).
	h := newHarness(t, 4, 4, 1, 1)
	p := &Packet{Src: 0, Dst: 15, Class: stats.ClassReply, Flits: 9}
	h.mesh.Inject(p)
	h.drain(300)
	got := h.delivered[p.ID]
	if got == 0 || got > 45 {
		t.Errorf("9-flit latency %d; store-and-forward (~70+) suggests cut-through is broken", got)
	}
}

func TestLocalDelivery(t *testing.T) {
	h := newHarness(t, 2, 2, 1, 1)
	p := &Packet{Src: 1, Dst: 1, Class: stats.ClassRequest, Flits: 1}
	h.mesh.Inject(p)
	h.drain(50)
	if _, ok := h.delivered[p.ID]; !ok {
		t.Fatal("self-addressed packet not delivered")
	}
}

func TestSerializationContention(t *testing.T) {
	// Two 9-flit packets over the same link one after another: the second
	// must wait for the first's tail (one link moves 1 flit/cycle).
	h := newHarness(t, 2, 1, 1, 1)
	p1 := &Packet{Src: 0, Dst: 1, Class: stats.ClassReply, Flits: 9}
	p2 := &Packet{Src: 0, Dst: 1, Class: stats.ClassReply, Flits: 9}
	h.mesh.Inject(p1)
	h.mesh.Inject(p2)
	h.drain(200)
	d1, d2 := h.delivered[p1.ID], h.delivered[p2.ID]
	if d2 < d1+9 {
		t.Errorf("second packet at %d, first at %d: link serialization lost", d2, d1)
	}
}

func TestTrafficCounters(t *testing.T) {
	h := newHarness(t, 2, 2, 1, 1)
	h.mesh.Inject(&Packet{Src: 0, Dst: 3, Class: stats.ClassRequest, Flits: 1})
	h.mesh.Inject(&Packet{Src: 3, Dst: 0, Class: stats.ClassReply, Flits: 9})
	h.mesh.Inject(&Packet{Src: 1, Dst: 2, Class: stats.ClassCoherence, Flits: 1})
	h.drain(100)
	tr := h.mesh.Traffic()
	if tr.Messages[stats.ClassRequest] != 1 || tr.Messages[stats.ClassReply] != 1 || tr.Messages[stats.ClassCoherence] != 1 {
		t.Errorf("message counts %v", tr.Messages)
	}
	if tr.Flits[stats.ClassReply] != 9 {
		t.Errorf("reply flits %d, want 9", tr.Flits[stats.ClassReply])
	}
	if h.mesh.Delivered() != 3 {
		t.Errorf("delivered %d, want 3", h.mesh.Delivered())
	}
	if h.mesh.AvgLatency(stats.ClassRequest) <= 0 {
		t.Error("request latency not recorded")
	}
}

func TestXYRoutingNoDeadlockUnderLoad(t *testing.T) {
	h := newHarness(t, 4, 4, 1, 1)
	r := rand.New(rand.NewSource(42))
	const n = 500
	for i := 0; i < n; i++ {
		src := r.Intn(16)
		dst := r.Intn(16)
		flits := 1
		if i%3 == 0 {
			flits = 9
		}
		h.mesh.Inject(&Packet{Src: src, Dst: dst, Class: stats.ClassRequest, Flits: flits})
	}
	h.drain(100_000)
	if len(h.delivered) != n {
		t.Fatalf("delivered %d/%d packets", len(h.delivered), n)
	}
}

// Property: every injected packet is delivered exactly once at its
// destination, and per src-dst pair delivery order matches injection order.
func TestPropDeliveryExactlyOnceAndOrdered(t *testing.T) {
	f := func(seed int64) bool {
		eng := engine.New()
		type rec struct {
			cycle uint64
			seq   int
		}
		delivered := map[uint64]int{} // id -> seq delivered
		var order []uint64
		mesh := New(eng, 4, 2, 1, 1, func(dst int, p *Packet) {
			delivered[p.ID]++
			order = append(order, p.ID)
		})
		r := rand.New(rand.NewSource(seed))
		const n = 60
		type flow struct{ src, dst int }
		sent := map[flow][]uint64{}
		for i := 0; i < n; i++ {
			fl := flow{r.Intn(8), r.Intn(8)}
			p := &Packet{Src: fl.src, Dst: fl.dst, Class: stats.ClassRequest, Flits: 1 + r.Intn(9)}
			mesh.Inject(p)
			sent[fl] = append(sent[fl], p.ID)
		}
		for i := 0; i < 50_000 && mesh.InFlight() > 0; i++ {
			eng.Step()
		}
		for i := 0; i < 4; i++ {
			eng.Step()
		}
		if len(delivered) != n {
			return false
		}
		for _, cnt := range delivered {
			if cnt != 1 {
				return false
			}
		}
		// Per-flow FIFO: ids of one flow appear in injection order.
		pos := map[uint64]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, ids := range sent {
			for i := 1; i < len(ids); i++ {
				if pos[ids[i-1]] > pos[ids[i]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestInjectValidation(t *testing.T) {
	h := newHarness(t, 2, 2, 1, 1)
	for _, p := range []*Packet{
		{Src: -1, Dst: 0, Flits: 1},
		{Src: 0, Dst: 4, Flits: 1},
		{Src: 0, Dst: 1, Flits: 0},
	} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Inject(%+v) did not panic", p)
				}
			}()
			h.mesh.Inject(p)
		}()
	}
}

func TestLinkUtilizationAccounting(t *testing.T) {
	h := newHarness(t, 2, 1, 1, 1)
	h.mesh.Inject(&Packet{Src: 0, Dst: 1, Class: stats.ClassReply, Flits: 9})
	h.drain(100)
	util := h.mesh.LinkUtilization()
	var total uint64
	for _, ports := range util {
		for _, f := range ports {
			total += f
		}
	}
	// 9 flits cross one link plus 9 at ejection: 18 flit-cycles minimum.
	if total < 18 {
		t.Errorf("link utilization %d flit-cycles, want >= 18", total)
	}
}

func TestHeatmapRendersHotSpot(t *testing.T) {
	h := newHarness(t, 4, 4, 1, 1)
	// Everyone sends to tile 0: its links must be the hottest.
	for src := 1; src < 16; src++ {
		h.mesh.Inject(&Packet{Src: src, Dst: 0, Class: stats.ClassRequest, Flits: 9})
	}
	h.drain(10_000)
	out := h.mesh.Heatmap()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // 4 rows + scale line
		t.Fatalf("heatmap:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "[@]") {
		t.Errorf("hot spot not at tile 0:\n%s", out)
	}
	if !strings.Contains(lines[4], "scale") {
		t.Errorf("missing scale line:\n%s", out)
	}
}
