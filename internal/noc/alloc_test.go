package noc

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/stats"
)

// TestZeroAllocFlitStep is the mesh's alloc regression gate: once the
// packet pool and router ring buffers are warm, a full corner-to-corner
// send — inject, per-hop routing, delivery, packet recycle — must not
// allocate (ISSUE: zero steady-state allocation in flit stepping).
func TestZeroAllocFlitStep(t *testing.T) {
	eng := engine.New()
	delivered := 0
	m := New(eng, 4, 4, 1, 1, func(dst int, p *Packet) { delivered++ })

	roundTrip := func() {
		m.Send(0, 15, stats.ClassRequest, 3, nil)
		m.Send(15, 0, stats.ClassReply, 5, nil)
		for i := 0; i < 500 && m.InFlight() > 0; i++ {
			eng.Step()
		}
	}
	// Warm up: fill the packet free list and grow every router queue that
	// this traffic pattern touches.
	for i := 0; i < 8; i++ {
		roundTrip()
	}
	if m.InFlight() != 0 {
		t.Fatal("warm-up traffic did not drain")
	}
	before := delivered

	allocs := testing.AllocsPerRun(100, roundTrip)
	if allocs != 0 {
		t.Fatalf("pooled send round-trip allocates %.1f objects/op, want 0", allocs)
	}
	if delivered == before {
		t.Fatal("gate measured no deliveries; traffic never moved")
	}
}
