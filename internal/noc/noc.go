// Package noc models the CMP's main data interconnect: a 2D-mesh,
// packet-switched network with dimension-order (XY) routing, one-flit-per-
// cycle link bandwidth, and per-hop router/link pipeline delays.
//
// Forwarding is virtual cut-through (wormhole-like): the head flit moves to
// the next router after the hop latency while the tail still drains, so
// end-to-end latency is hops*(router+link+1) + flits, not hops*flits. Each
// output port stays busy for the packet's full length, so bandwidth
// contention and hot-spot queueing emerge naturally — the behaviour that
// makes centralized software barriers collapse in the paper.
package noc

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// spanNocTx is the timeline span of one output-port transmission: the port
// is busy [start, start+flits(+retransmission)); arg carries the flit count.
const spanNocTx = "noc.tx"

// Port indices of a router.
const (
	portLocal = iota
	portNorth
	portSouth
	portEast
	portWest
	numPorts
)

// Packet is one network message.
type Packet struct {
	// ID is unique per mesh, assigned at injection.
	ID uint64
	// Src and Dst are tile indices.
	Src, Dst int
	// Class drives the Figure 7 traffic accounting.
	Class stats.MsgClass
	// Flits is the packet length; links move one flit per cycle.
	Flits int
	// Payload is the protocol-level message carried by this packet.
	Payload any
	// InjectedAt is the cycle Inject was called, for latency accounting.
	InjectedAt uint64

	// pooled marks packets owned by the mesh's free list (Send path); they
	// are recycled after the sink returns. Caller-built packets handed to
	// Inject are never recycled.
	pooled bool
	// next links free packets.
	next *Packet
}

type entry struct {
	p       *Packet
	readyAt uint64
}

// entryQueue is a FIFO ring over a power-of-two buffer. Port queues churn
// every cycle; the ring reuses its backing array instead of reallocating
// through the append/reslice pattern.
type entryQueue struct {
	buf  []entry
	head int
	n    int
}

func (q *entryQueue) front() *entry { return &q.buf[q.head] }

func (q *entryQueue) push(e entry) {
	if q.n == len(q.buf) {
		grown := make([]entry, max(4, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = e
	q.n++
}

func (q *entryQueue) pop() {
	q.buf[q.head] = entry{}
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
}

type router struct {
	in        [numPorts]entryQueue
	out       [numPorts]entryQueue
	busyUntil [numPorts]uint64
	// txFlits counts flit-cycles of occupancy per output port, for the
	// link-utilization report.
	txFlits [numPorts]uint64
}

// Metric names registered by the mesh. Per-class latency histograms are
// metricLatencyPrefix + the lowercased message class.
const (
	metricLatencyPrefix = "noc.latency."
	metricQueueDepth    = "noc.queue.depth"
)

// Mesh is the 2D-mesh network. It implements engine.Ticker.
type Mesh struct {
	cols, rows         int
	routerLat, linkLat uint64
	eng                *engine.Engine
	routers            []router
	sink               func(dst int, p *Packet)

	nextID    uint64
	inFlight  int
	traffic   stats.Traffic
	delivered uint64
	latSum    [stats.NumMsgClasses]uint64
	latCount  [stats.NumMsgClasses]uint64

	// pktFree recycles packets created by Send; sinks never retain their
	// packet past the callback, so a delivered pooled packet is immediately
	// reusable.
	pktFree *Packet

	reg       *metrics.Registry
	latHist   [stats.NumMsgClasses]*metrics.Histogram
	queuePeak *metrics.Gauge

	// inj, when set, injects link-level faults (transient link-down
	// windows, flit corruption forcing a retransmission). Nil in
	// fault-free systems.
	inj *fault.Injector

	// tl, when set, records per-port flit occupancy spans. Nil when
	// tracing is off: the transmission stage pays one branch.
	tl *trace.Timeline
}

// New creates a cols x rows mesh. Delivered packets are handed to sink.
func New(eng *engine.Engine, cols, rows int, routerLat, linkLat uint64, sink func(dst int, p *Packet)) *Mesh {
	if cols <= 0 || rows <= 0 {
		panic(fmt.Sprintf("noc: invalid mesh %dx%d", cols, rows))
	}
	m := &Mesh{
		cols:      cols,
		rows:      rows,
		routerLat: routerLat,
		linkLat:   linkLat,
		eng:       eng,
		routers:   make([]router, cols*rows),
		sink:      sink,
		reg:       metrics.NewRegistry(),
	}
	for c := stats.MsgClass(0); c < stats.NumMsgClasses; c++ {
		m.latHist[c] = m.reg.Histogram(metricLatencyPrefix+strings.ToLower(c.String()), metrics.CycleBuckets())
	}
	m.queuePeak = m.reg.Gauge(metricQueueDepth)
	eng.AddTicker(m)
	return m
}

// Metrics returns the mesh's metric registry (per-class latency histograms
// and router queue depth).
func (m *Mesh) Metrics() *metrics.Registry { return m.reg }

// SetInjector installs a fault injector on the mesh's links.
func (m *Mesh) SetInjector(inj *fault.Injector) { m.inj = inj }

// SetTimeline attaches a span timeline recording per-router, per-port
// transmission occupancy.
func (m *Mesh) SetTimeline(tl *trace.Timeline) { m.tl = tl }

// Nodes returns the number of tiles.
func (m *Mesh) Nodes() int { return m.cols * m.rows }

// Inject queues packet p at its source router's local input port. The
// packet's ID and InjectedAt fields are assigned here. The mesh does not
// take ownership: caller-built packets are never recycled.
func (m *Mesh) Inject(p *Packet) {
	p.pooled = false
	m.inject(p)
}

// Send builds a packet from the mesh's free list and injects it — the
// allocation-free path protocol hot loops use. The packet is recycled
// after the sink returns, so sinks must not retain it.
//
//glvet:cyclepath
func (m *Mesh) Send(src, dst int, class stats.MsgClass, flits int, payload any) {
	p := m.pktFree
	if p != nil {
		m.pktFree = p.next
		*p = Packet{pooled: true}
	} else {
		//lint:allow allocfree pool warm-up; steady state reuses delivered packets
		p = &Packet{pooled: true}
	}
	p.Src, p.Dst = src, dst
	p.Class = class
	p.Flits = flits
	p.Payload = payload
	m.inject(p)
}

//glvet:cyclepath
func (m *Mesh) inject(p *Packet) {
	if p.Src < 0 || p.Src >= len(m.routers) || p.Dst < 0 || p.Dst >= len(m.routers) {
		panic(fmt.Sprintf("noc: packet endpoints out of range: src=%d dst=%d nodes=%d", p.Src, p.Dst, len(m.routers)))
	}
	if p.Flits <= 0 {
		panic(fmt.Sprintf("noc: packet with %d flits", p.Flits))
	}
	p.ID = m.nextID
	m.nextID++
	p.InjectedAt = m.eng.Now()
	m.traffic.Add(p.Class, p.Flits)
	m.inFlight++
	r := &m.routers[p.Src]
	r.in[portLocal].push(entry{p: p, readyAt: m.eng.Now()})
	m.queuePeak.Set(uint64(r.in[portLocal].n))
}

// Traffic returns the accumulated per-class message/flit counters.
func (m *Mesh) Traffic() stats.Traffic { return m.traffic }

// Delivered returns the number of packets handed to the sink so far.
func (m *Mesh) Delivered() uint64 { return m.delivered }

// InFlight returns the number of injected but not yet delivered packets.
func (m *Mesh) InFlight() int { return m.inFlight }

// AvgLatency returns the mean inject-to-sink latency in cycles for the
// given class, or 0 if none delivered.
func (m *Mesh) AvgLatency(c stats.MsgClass) float64 {
	if m.latCount[c] == 0 {
		return 0
	}
	return float64(m.latSum[c]) / float64(m.latCount[c])
}

// LinkUtilization returns total flit-cycles transmitted per tile per port,
// indexed [tile][port]; ports follow Local,N,S,E,W order.
func (m *Mesh) LinkUtilization() [][5]uint64 {
	u := make([][5]uint64, len(m.routers))
	for i := range m.routers {
		u[i] = m.routers[i].txFlits
	}
	return u
}

// route returns the output port for a packet at tile node heading to dst,
// using XY (column-first) dimension-order routing.
func (m *Mesh) route(node, dst int) int {
	nc, nr := node%m.cols, node/m.cols
	dc, dr := dst%m.cols, dst/m.cols
	switch {
	case dc > nc:
		return portEast
	case dc < nc:
		return portWest
	case dr > nr:
		return portSouth
	case dr < nr:
		return portNorth
	default:
		return portLocal
	}
}

// neighbor returns the tile index adjacent to node through port, and the
// input port on which the packet arrives there.
func (m *Mesh) neighbor(node, port int) (next, inPort int) {
	switch port {
	case portNorth:
		return node - m.cols, portSouth
	case portSouth:
		return node + m.cols, portNorth
	case portEast:
		return node + 1, portWest
	case portWest:
		return node - 1, portEast
	}
	panic("noc: neighbor of local port")
}

// deliverCB ejects a fully-drained packet into its node: recv is the mesh,
// obj the packet, a the node index.
func deliverCB(recv, obj any, a, _ uint64) { recv.(*Mesh).deliver(int(a), obj.(*Packet)) }

// arriveCB lands a packet's head flit on a neighbor router's input port:
// recv is the mesh, obj the packet, a the tile, b the input port.
func arriveCB(recv, obj any, a, b uint64) { recv.(*Mesh).arrive(int(a), int(b), obj.(*Packet)) }

// Tick advances the mesh one cycle: a routing stage moving at most one
// packet per input port into an output queue, then a transmission stage
// starting at most one packet per free output port.
//
//glvet:cyclepath
func (m *Mesh) Tick(cycle uint64) bool {
	if m.inFlight == 0 {
		return false
	}
	for node := range m.routers {
		r := &m.routers[node]
		for port := 0; port < numPorts; port++ {
			q := &r.in[port]
			if q.n == 0 || q.front().readyAt > cycle {
				continue
			}
			e := *q.front()
			q.pop()
			outPort := m.route(node, e.p.Dst)
			r.out[outPort].push(entry{p: e.p, readyAt: cycle + m.routerLat})
			m.queuePeak.Set(uint64(r.out[outPort].n))
		}
		for port := 0; port < numPorts; port++ {
			q := &r.out[port]
			if q.n == 0 || q.front().readyAt > cycle || r.busyUntil[port] > cycle {
				continue
			}
			if port != portLocal && m.inj.LinkDown(cycle, node, port) {
				// Transient outage: the port cannot start a transmission
				// this cycle; the packet retries on the next one.
				continue
			}
			e := *q.front()
			q.pop()
			flits := uint64(e.p.Flits)
			if port == portLocal {
				r.busyUntil[port] = cycle + flits
				r.txFlits[port] += flits
				m.tl.Span(trace.RouterTrack(node, port), spanNocTx, cycle, cycle+flits, 0, flits)
				// Ejection: the packet fully drains into the node.
				m.eng.Call(cycle+flits, deliverCB, m, e.p, uint64(node), 0)
				continue
			}
			// Corruption caught by the link-level CRC costs one full
			// retransmission of the packet on this link.
			var extra uint64
			if m.inj.Corrupt(cycle, node, port) {
				extra = flits
			}
			r.busyUntil[port] = cycle + flits + extra
			r.txFlits[port] += flits + extra
			m.tl.Span(trace.RouterTrack(node, port), spanNocTx, cycle, cycle+flits+extra, 0, flits)
			next, inPort := m.neighbor(node, port)
			// Cut-through: the head flit reaches the neighbor after one
			// flit time plus the wire delay; the tail follows while the
			// downstream router already routes the head.
			m.eng.Call(cycle+1+m.linkLat+extra, arriveCB, m, e.p, uint64(next), uint64(inPort))
		}
	}
	return true
}

// arrive lands a packet on node's input port after a link traversal.
//
//glvet:cyclepath
func (m *Mesh) arrive(node, inPort int, p *Packet) {
	r := &m.routers[node]
	r.in[inPort].push(entry{p: p, readyAt: m.eng.Now()})
	m.queuePeak.Set(uint64(r.in[inPort].n))
}

//glvet:cyclepath
func (m *Mesh) deliver(node int, p *Packet) {
	m.inFlight--
	m.delivered++
	lat := m.eng.Now() - p.InjectedAt
	m.latSum[p.Class] += lat
	m.latCount[p.Class]++
	m.latHist[p.Class].Observe(lat)
	m.sink(node, p)
	if p.pooled {
		*p = Packet{}
		p.next = m.pktFree
		m.pktFree = p
	}
}

// Stats is a serializable summary of the mesh's link-level activity: the
// grid shape, per-tile per-port flit-cycle counts (ports in Local,N,S,E,W
// order) and the peak router queue depth observed during the run.
type Stats struct {
	Cols      int                `json:"cols"`
	Rows      int                `json:"rows"`
	LinkFlits [][numPorts]uint64 `json:"link_flits"`
	PeakQueue uint64             `json:"peak_queue"`
}

// Stats captures the mesh's current link-utilization summary.
func (m *Mesh) Stats() Stats {
	return Stats{
		Cols:      m.cols,
		Rows:      m.rows,
		LinkFlits: m.LinkUtilization(),
		PeakQueue: m.queuePeak.Peak(),
	}
}

// Heatmap renders per-tile link utilization (total flit-cycles transmitted
// by each router) as an ASCII grid — hot-spot patterns like a contended
// barrier counter's home bank become immediately visible.
func (m *Mesh) Heatmap() string {
	totals := make([]uint64, len(m.routers))
	var max uint64
	for i := range m.routers {
		var t uint64
		for _, f := range m.routers[i].txFlits {
			t += f
		}
		totals[i] = t
		if t > max {
			max = t
		}
	}
	shades := []byte(" .:-=+*#%@")
	var b []byte
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			t := totals[r*m.cols+c]
			idx := 0
			if max > 0 {
				idx = int(t * uint64(len(shades)-1) / max)
			}
			b = append(b, '[', shades[idx], ']')
		}
		b = append(b, '\n')
	}
	b = append(b, fmt.Sprintf("scale: ' '=0 .. '@'=%d flit-cycles\n", max)...)
	return string(b)
}
